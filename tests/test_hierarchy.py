"""The integrated memory system: hit/miss timing, prefetch interplay."""

import pytest

from repro.memory import MemorySystem, MemoryTimings


@pytest.fixture()
def system():
    return MemorySystem(MemoryTimings(bus_latency=30, bus_service_interval=4,
                                      hardware_next_line_prefetch=False))


class TestLoadTiming:
    def test_demand_miss_costs_bus_latency(self, system):
        value, stall = system.load_word(0x1000, cycle=0)
        assert stall == 30
        assert system.stats.demand_miss_stalls == 1

    def test_hit_after_fill_is_free(self, system):
        system.load_word(0x1000, 0)
        value, stall = system.load_word(0x1004, 100)  # same 32B line
        assert stall == 0

    def test_prefetch_hides_latency(self, system):
        system.prefetch_line(0x2000, 0)
        _, stall = system.load_word(0x2000, 100)
        assert stall == 0
        assert system.prefetch_buffer.stats.useful == 1

    def test_partial_miss_pays_residual(self, system):
        system.prefetch_line(0x2000, 0)
        _, stall = system.load_word(0x2000, 10)   # arrives at 30
        assert stall == 20
        assert system.stats.partial_miss_stalls == 1

    def test_prefetch_skipped_when_cached(self, system):
        system.load_word(0x3000, 0)
        assert not system.prefetch_line(0x3000, 10)

    def test_prefetch_range_counts_line_crossings(self, system):
        # 17 bytes starting 4 bytes before a line boundary: two lines
        issued = system.prefetch_range(0x101C, 17, 0)
        assert issued == 2
        issued_single = system.prefetch_range(0x2000, 16, 0)
        assert issued_single == 1

    def test_functional_value_comes_from_main_memory(self, system):
        system.main.store_word(0x1000, 0xCAFEBABE)
        value, _ = system.load_word(0x1000, 0)
        assert value == 0xCAFEBABE

    def test_store_is_write_through(self, system):
        system.store_word(0x1000, 42, 0)
        assert system.main.load_word(0x1000) == 42
        # no-allocate: the store did not install the line
        assert not system.dcache.contains(0x1000)

    def test_load_timing_equals_load_word_stall(self):
        a = MemorySystem(MemoryTimings(hardware_next_line_prefetch=False))
        b = MemorySystem(MemoryTimings(hardware_next_line_prefetch=False))
        for cycle, addr in enumerate([0x100, 0x100, 0x5000, 0x5020]):
            _, stall_a = a.load_word(addr, cycle * 10)
            stall_b = b.load_timing(addr, cycle * 10)
            assert stall_a == stall_b


class TestHardwareNextLinePrefetch:
    def test_sequential_misses_get_cheaper(self):
        plain = MemorySystem(MemoryTimings(hardware_next_line_prefetch=False))
        smart = MemorySystem(MemoryTimings(hardware_next_line_prefetch=True))
        def walk(system):
            total = 0
            cycle = 0
            for i in range(8):
                stall = system.load_timing(0x4000 + 32 * i, cycle)
                total += stall
                cycle += stall + 40
            return total
        assert walk(smart) < walk(plain)


class TestIfetch:
    def test_icache_cold_then_warm(self, system):
        stall_cold = system.ifetch(0x100000, 0)
        assert stall_cold > 0
        assert system.ifetch(0x100000, 100) == 0
        # same 64-byte I$ line
        assert system.ifetch(0x100030, 100) == 0

    def test_icache_stats_accumulate(self, system):
        system.ifetch(0x100000, 0)
        assert system.stats.icache_stall_cycles > 0


class TestReset:
    def test_reset_timing_preserves_data(self, system):
        system.main.store_word(0x1000, 7)
        system.load_word(0x1000, 0)
        system.reset_timing()
        assert system.main.load_word(0x1000) == 7
        assert not system.dcache.contains(0x1000)
        assert system.stats.load_count == 0
        _, stall = system.load_word(0x1000, 0)
        assert stall > 0  # cold again

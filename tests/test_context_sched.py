"""Reconfiguration management: context scheduling policies."""

import pytest

from repro.errors import RfuError
from repro.rfu.context_sched import (
    BeladyPolicy,
    ConfigurationUse,
    LruPolicy,
    rotation_trace,
    simulate_context_schedule,
)


def _single_config_trace(uses=10, cycles=100):
    return [ConfigurationUse(1, cycles) for _ in range(uses)]


class TestBasics:
    def test_single_config_loads_once(self):
        result = simulate_context_schedule(_single_config_trace(), 4, 50)
        assert result.loads == 1
        assert result.hits == 9
        assert result.stall_cycles == 50

    def test_fitting_working_set_only_cold_misses(self):
        trace = rotation_trace([1, 2, 3], repetitions=10,
                               execution_cycles=100)
        result = simulate_context_schedule(trace, contexts=4, load_penalty=50)
        assert result.loads == 3
        assert result.stall_cycles == 3 * 50

    def test_lru_thrashes_on_oversized_rotation(self):
        trace = rotation_trace([1, 2, 3, 4, 5], repetitions=10,
                               execution_cycles=100)
        result = simulate_context_schedule(trace, contexts=4, load_penalty=50)
        # classic LRU pathological case: every use misses
        assert result.hits == 0
        assert result.stall_cycles == len(trace) * 50

    def test_zero_penalty_costs_nothing(self):
        trace = rotation_trace([1, 2, 3, 4, 5], 5, 100)
        result = simulate_context_schedule(trace, 2, 0)
        assert result.stall_cycles == 0

    def test_validation(self):
        with pytest.raises(RfuError):
            simulate_context_schedule([], 0, 10)
        with pytest.raises(RfuError):
            simulate_context_schedule([], 1, -1)


class TestBelady:
    def test_belady_beats_lru_on_rotation(self):
        trace = rotation_trace([1, 2, 3, 4, 5], repetitions=10,
                               execution_cycles=100)
        lru = simulate_context_schedule(trace, 4, 50, LruPolicy())
        belady = simulate_context_schedule(trace, 4, 50, BeladyPolicy())
        assert belady.stall_cycles < lru.stall_cycles

    def test_belady_never_worse_than_lru(self):
        import random
        rng = random.Random(7)
        trace = [ConfigurationUse(rng.randrange(6), 80) for _ in range(200)]
        lru = simulate_context_schedule(trace, 3, 40, LruPolicy())
        belady = simulate_context_schedule(trace, 3, 40, BeladyPolicy())
        assert belady.stall_cycles <= lru.stall_cycles

    def test_belady_evicts_never_reused_first(self):
        trace = [ConfigurationUse(c, 10) for c in (1, 2, 3, 1, 2, 1, 2)]
        result = simulate_context_schedule(trace, 2, 10, BeladyPolicy())
        # config 3 is loaded once and evicted; 1 and 2 stay resident
        assert result.loads == 4  # 1, 2, 3, then reload of 1 or 2 once


class TestPrefetch:
    def test_prefetch_hides_penalty_when_kernel_is_long(self):
        trace = rotation_trace([1, 2, 3, 4, 5], repetitions=10,
                               execution_cycles=200)
        plain = simulate_context_schedule(trace, 4, 100)
        prefetched = simulate_context_schedule(trace, 4, 100,
                                               prefetch_next=True)
        assert prefetched.stall_cycles < plain.stall_cycles
        # execution (200) covers the load (100) completely after warmup
        assert prefetched.stall_cycles <= 5 * 100

    def test_prefetch_partial_when_kernel_is_short(self):
        trace = rotation_trace([1, 2, 3, 4, 5], repetitions=10,
                               execution_cycles=30)
        prefetched = simulate_context_schedule(trace, 4, 100,
                                               prefetch_next=True)
        plain = simulate_context_schedule(trace, 4, 100)
        # residual 70 cycles per switch instead of 100
        assert prefetched.stall_cycles < plain.stall_cycles
        assert prefetched.stall_cycles > 0

    def test_single_slot_cannot_prefetch(self):
        trace = rotation_trace([1, 2], repetitions=5, execution_cycles=100)
        prefetched = simulate_context_schedule(trace, 1, 50,
                                               prefetch_next=True)
        plain = simulate_context_schedule(trace, 1, 50)
        assert prefetched.stall_cycles == plain.stall_cycles

    def test_result_metadata(self):
        trace = _single_config_trace()
        result = simulate_context_schedule(trace, 2, 10, prefetch_next=True)
        assert result.policy == "lru+prefetch"
        assert result.uses == len(trace)
        assert 0 <= result.hit_rate <= 1
        assert 0 <= result.overhead_fraction < 1


class TestExperiment:
    def test_table_shapes(self, small_context):
        from repro.experiments.ablations import run_context_schedule_experiment
        table = run_context_schedule_experiment(small_context)
        assert len(table.rows) == 9
        # at every penalty, prefetch must beat plain LRU stalls
        for penalty_group in range(3):
            rows = table.rows[3 * penalty_group:3 * penalty_group + 3]
            lru = int(rows[0][3].replace(",", ""))
            belady = int(rows[1][3].replace(",", ""))
            prefetch = int(rows[2][3].replace(",", ""))
            assert belady <= lru
            assert prefetch <= lru

"""Static import-graph analysis behind the per-cell cache keys.

The load-bearing guarantees:

* the scan sees function-level imports and resolves symbol imports to
  their defining module;
* orchestration modules (sweep/, faults, __main__, jsonlines) never
  enter a closure;
* the decoder is reachable from no registered cell, so a decoder-only
  edit moves no cell's code version — the incremental-sweep premise;
* an encoder edit moves context-backed cells (tables run the encoder via
  the shared workload) but no pure replay figure;
* unknown cells fall back to the global fingerprint (never
  under-invalidated).
"""

import pathlib
import shutil

import repro
from repro.experiments.runner import RUNNERS, cell_names
from repro.sweep import cell_closure, cell_code_version, code_fingerprint
from repro.sweep.deps import (
    ModuleInfo,
    cell_code_versions,
    cell_roots,
    closure,
    reset_scan_cache,
    scan,
)

PACKAGE_ROOT = pathlib.Path(repro.__file__).parent


def _graph(**imports):
    """A synthetic import graph: name -> tuple of imported names."""
    return {name: ModuleInfo(name=name, path=f"{name}.py",
                             fingerprint="0" * 16, imports=deps)
            for name, deps in imports.items()}


class TestScan:
    def test_real_tree_scan_is_plausible(self):
        modules = scan()
        assert "repro.codec.decoder" in modules
        assert "repro.experiments.workload" in modules
        assert "repro.codec" in modules       # package __init__
        info = modules["repro.experiments.workload"]
        assert "repro.core.exploration" in info.imports
        assert len(info.fingerprint) == 16

    def test_function_level_imports_are_seen(self, tmp_path):
        pkg = tmp_path / "repro"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "late.py").write_text(
            "def f():\n    from repro import helper\n    return helper\n")
        (pkg / "helper.py").write_text("X = 1\n")
        modules = scan(pkg)
        assert modules["repro.late"].imports == ("repro.helper",)

    def test_relative_and_symbol_imports_resolve(self, tmp_path):
        pkg = tmp_path / "repro"
        (pkg / "sub").mkdir(parents=True)
        (pkg / "__init__.py").write_text("")
        (pkg / "sub" / "__init__.py").write_text("")
        (pkg / "sub" / "a.py").write_text("from . import b\n")
        (pkg / "sub" / "b.py").write_text(
            "from repro.sub.c import Thing\n")
        (pkg / "sub" / "c.py").write_text("class Thing:\n    pass\n")
        modules = scan(pkg)
        assert modules["repro.sub.a"].imports == ("repro.sub.b",)
        assert modules["repro.sub.b"].imports == ("repro.sub.c",)

    def test_syntax_error_is_fingerprinted_without_edges(self, tmp_path):
        pkg = tmp_path / "repro"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "broken.py").write_text("def oops(:\n")
        modules = scan(pkg)
        assert modules["repro.broken"].imports == ()
        assert len(modules["repro.broken"].fingerprint) == 16


class TestClosure:
    def test_transitive_walk(self):
        graph = _graph(**{"repro.a": ("repro.b",),
                          "repro.b": ("repro.c",),
                          "repro.c": (),
                          "repro.d": ()})
        assert closure(["repro.a"], graph) \
            == {"repro.a", "repro.b", "repro.c"}

    def test_excluded_modules_are_skipped(self):
        graph = _graph(**{"repro.a": ("repro.faults",
                                      "repro.sweep.cache",
                                      "repro.jsonlines", "repro.b"),
                          "repro.faults": ("repro.c",),
                          "repro.sweep.cache": (),
                          "repro.jsonlines": (),
                          "repro.b": (), "repro.c": ()})
        assert closure(["repro.a"], graph) == {"repro.a", "repro.b"}

    def test_cycles_terminate(self):
        graph = _graph(**{"repro.a": ("repro.b",),
                          "repro.b": ("repro.a",)})
        assert closure(["repro.a"], graph) == {"repro.a", "repro.b"}


class TestCellClosures:
    def test_every_registered_cell_has_a_closure(self):
        for name in ["workload"] + cell_names(True):
            members = cell_closure(name)
            assert members, name
            assert "repro.experiments.runner" in members, name

    def test_decoder_is_in_no_cell_closure(self):
        # the premise of the incremental acceptance test: nothing the
        # sweep runs can reach the decoder, so a decoder edit moves no key
        for name in ["workload"] + cell_names(True):
            assert "repro.codec.decoder" not in cell_closure(name), name

    def test_figures_do_not_close_over_the_encoder(self):
        # figures replay recorded traces; only context-backed cells
        # (which run the encoder via the shared workload) see codec code
        for name, (kind, _) in RUNNERS.items():
            members = cell_closure(name)
            if kind == "figure":
                assert "repro.codec.encoder" not in members, name
            else:
                assert "repro.codec.encoder" in members, name

    def test_orchestration_never_enters_a_closure(self):
        for name in ["workload"] + cell_names(True):
            for member in cell_closure(name):
                assert not member.startswith("repro.sweep"), name
                assert member not in ("repro.faults", "repro.__main__",
                                      "repro.jsonlines"), name

    def test_unknown_cell_falls_back_to_global_fingerprint(self):
        assert cell_roots("no-such-cell") is None
        assert cell_closure("no-such-cell") is None
        assert cell_code_version("no-such-cell") == code_fingerprint()


class TestCodeVersions:
    @staticmethod
    def _copy_tree(tmp_path, name):
        copy = tmp_path / name / "repro"
        shutil.copytree(PACKAGE_ROOT, copy,
                        ignore=shutil.ignore_patterns("__pycache__"))
        return copy

    def test_decoder_edit_moves_no_cell(self, tmp_path):
        copy = self._copy_tree(tmp_path, "edited")
        baseline = cell_code_versions(["workload"] + cell_names(True),
                                      PACKAGE_ROOT)
        with open(copy / "codec" / "decoder.py", "a") as handle:
            handle.write("\n# decoder-only edit\n")
        reset_scan_cache()
        try:
            edited = cell_code_versions(list(baseline), copy)
        finally:
            reset_scan_cache()
        assert edited == baseline

    def test_encoder_edit_moves_tables_but_not_figures(self, tmp_path):
        copy = self._copy_tree(tmp_path, "edited")
        names = ["workload"] + cell_names(True)
        baseline = cell_code_versions(names, PACKAGE_ROOT)
        with open(copy / "codec" / "encoder.py", "a") as handle:
            handle.write("\n# encoder edit\n")
        reset_scan_cache()
        try:
            edited = cell_code_versions(names, copy)
        finally:
            reset_scan_cache()
        for name in names:
            kind = RUNNERS[name][0] if name in RUNNERS else "table"
            if kind == "figure":
                assert edited[name] == baseline[name], name
            else:
                assert edited[name] != baseline[name], name

    def test_versions_are_stable_across_scans(self):
        names = cell_names(False)
        reset_scan_cache()
        first = cell_code_versions(names)
        reset_scan_cache()
        assert cell_code_versions(names) == first

"""Line Buffers A and B (paper §5b, Figures 3 and 4)."""

import pytest

from repro.errors import MemoryError_
from repro.memory import LineBufferA, LineBufferB, MemorySystem, MemoryTimings
from repro.memory.linebuffer import ACCESS_LATENCY, MACROBLOCK_ROWS


def _memory():
    return MemorySystem(MemoryTimings(bus_latency=30, bus_service_interval=4,
                                      prefetch_entries=64,
                                      hardware_next_line_prefetch=False))


class TestLineBufferA:
    def test_fill_then_ready_rows_read_free(self):
        buffer = LineBufferA()
        buffer.begin_fill(0x1000, [10 * (row + 1)
                                   for row in range(MACROBLOCK_ROWS)])
        assert buffer.read_row(0, cycle=50) == 0
        assert buffer.holds(0x1000)

    def test_unready_row_stalls_until_done(self):
        buffer = LineBufferA()
        buffer.begin_fill(0x1000, [100] * MACROBLOCK_ROWS)
        assert buffer.read_row(3, cycle=40) == 60
        assert buffer.stats.stalled_reads == 1
        assert buffer.stats.stall_cycles == 60

    def test_wrong_fill_size_rejected(self):
        buffer = LineBufferA()
        with pytest.raises(MemoryError_):
            buffer.begin_fill(0, [0] * 5)

    def test_read_before_fill_rejected(self):
        buffer = LineBufferA()
        with pytest.raises(MemoryError_):
            buffer.read_row(0, 0)

    def test_row_range_checked(self):
        buffer = LineBufferA()
        buffer.begin_fill(0, [0] * MACROBLOCK_ROWS)
        with pytest.raises(MemoryError_):
            buffer.read_row(16, 0)

    def test_refill_replaces_macroblock(self):
        buffer = LineBufferA()
        buffer.begin_fill(0x1000, [0] * MACROBLOCK_ROWS)
        buffer.begin_fill(0x2000, [5] * MACROBLOCK_ROWS)
        assert not buffer.holds(0x1000)
        assert buffer.holds(0x2000)
        assert buffer.stats.fills == 2


class TestLineBufferB:
    def test_capacity_is_paper_organisation(self):
        buffer = LineBufferB(_memory())
        assert buffer.banks == 4
        assert buffer.lines_per_bank == 17
        assert buffer.capacity == 68

    def test_prefetch_then_timely_read_is_free(self):
        memory = _memory()
        buffer = LineBufferB(memory)
        buffer.prefetch_lines([0x1000], cycle=0)
        assert buffer.read_line(0x1000, cycle=200) == 0

    def test_early_read_pays_residual(self):
        memory = _memory()
        buffer = LineBufferB(memory)
        arrivals = buffer.prefetch_lines([0x1000], cycle=0)
        assert buffer.read_line(0x1000, cycle=10) == arrivals[0] - 10

    def test_tag_match_reuses_pending_entry(self):
        memory = _memory()
        buffer = LineBufferB(memory)
        buffer.prefetch_lines([0x1000, 0x1020], cycle=0)
        requests_before = buffer.stats.requests
        arrivals = buffer.prefetch_lines([0x1000, 0x1020], cycle=5)
        assert buffer.stats.requests == requests_before
        assert buffer.stats.reused == 2
        assert all(a is not None for a in arrivals)

    def test_cached_line_fills_at_access_latency(self):
        memory = _memory()
        buffer = LineBufferB(memory)
        memory.load_word(0x1000, 0)  # warm the D$
        arrivals = buffer.prefetch_lines([0x1000], cycle=100)
        assert arrivals[0] == 100 + ACCESS_LATENCY

    def test_miss_falls_back_to_dcache(self):
        memory = _memory()
        buffer = LineBufferB(memory)
        stall = buffer.read_line(0x5000, cycle=0)
        assert stall > 0  # demand miss through the D$
        assert memory.stats.demand_miss_stalls == 1
        # second read of the same line: D$ hit, still a tag miss in LB B
        assert buffer.read_line(0x5000, cycle=100) == 0

    def test_eviction_keeps_capacity_bounded(self):
        memory = _memory()
        buffer = LineBufferB(memory)
        lines = [0x8000 + 32 * i for i in range(100)]
        buffer.prefetch_lines(lines, cycle=0)
        assert len(buffer._entries) <= buffer.capacity

    def test_flush(self):
        memory = _memory()
        buffer = LineBufferB(memory)
        buffer.prefetch_lines([0x1000], 0)
        buffer.flush()
        assert 0x1000 not in buffer

"""Register allocation: correctness of the mapping."""

import pytest

from repro.errors import RegisterAllocationError
from repro.isa import Operation, vreg
from repro.isa.registers import (
    BranchRegister,
    GeneralRegister,
    VirtualRegister,
)
from repro.program import BasicBlock, Program, allocate_registers, schedule_program
from repro.program.builder import KernelBuilder


def _build_and_allocate(program):
    scheduled = schedule_program(program)
    mapping = allocate_registers(scheduled)
    return scheduled, mapping


class TestBasicAllocation:
    def test_all_virtuals_mapped(self):
        kb = KernelBuilder("k")
        p = kb.param("p")
        with kb.block("b"):
            a = kb.emit("addi", p, imm=1)
            kb.emit("add", a, p)
        scheduled, mapping = _build_and_allocate(kb.finish())
        for block in scheduled.blocks:
            for bundle in block.bundles:
                for op in bundle:
                    for reg in list(op.srcs) + ([op.dest] if op.dest else []):
                        assert not isinstance(reg, VirtualRegister)

    def test_branch_virtuals_get_branch_registers(self):
        kb = KernelBuilder("k")
        n = kb.persistent_reg("n")
        with kb.block("init"):
            kb.emit("movi", dest=n, imm=2)
        with kb.counted_loop("loop", n):
            kb.emit("movi", imm=0)
        scheduled, mapping = _build_and_allocate(kb.finish())
        kinds = {type(reg) for reg in mapping.values()}
        assert BranchRegister in kinds
        assert GeneralRegister in kinds

    def test_persistent_registers_are_distinct(self):
        kb = KernelBuilder("k")
        regs = [kb.persistent_reg(f"p{i}") for i in range(10)]
        with kb.block("b"):
            for reg in regs:
                kb.emit("movi", dest=reg, imm=0)
        _, mapping = _build_and_allocate(kb.finish())
        physical = [mapping[reg] for reg in regs]
        assert len(set(physical)) == len(physical)

    def test_zero_register_never_allocated(self):
        kb = KernelBuilder("k")
        with kb.block("b"):
            for i in range(30):
                kb.emit("movi", imm=i)
        _, mapping = _build_and_allocate(kb.finish())
        assert all(reg.index != 0 for reg in mapping.values()
                   if isinstance(reg, GeneralRegister))

    def test_temporaries_reuse_registers(self):
        # a long sequence of short-lived temps must fit in the file
        kb = KernelBuilder("k")
        p = kb.param("p")
        with kb.block("b"):
            for _ in range(200):
                t = kb.emit("addi", p, imm=1)
                kb.emit("add", t, p)
        _, mapping = _build_and_allocate(kb.finish())  # must not raise
        assert len(mapping) > 200


class TestLiveRangeCorrectness:
    def test_no_overlapping_live_ranges(self):
        """Two temps sharing a physical register never have overlapping
        [def, last-use] windows in issue order."""
        kb = KernelBuilder("k")
        p = kb.param("p")
        with kb.block("b"):
            values = [kb.emit("addi", p, imm=i) for i in range(12)]
            total = values[0]
            for value in values[1:]:
                total = kb.emit("add", total, value)
        program = kb.finish()
        scheduled = schedule_program(program)
        mapping = allocate_registers(scheduled)

        # reconstruct issue positions per physical register
        windows = {}
        position = 0
        ranges = {}
        for block in scheduled.blocks:
            for bundle in block.bundles:
                for op in bundle:
                    for src in op.srcs:
                        if src in ranges:
                            ranges[src][1] = position
                    if op.dest is not None and op.dest not in ranges:
                        ranges[op.dest] = [position, position]
                position += 1
        by_phys = {}
        for reg, (start, end) in ranges.items():
            by_phys.setdefault(reg, []).append((start, end))
        for reg, spans in by_phys.items():
            spans.sort()
            for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
                assert e1 <= s2, f"{reg} live ranges overlap"


class TestExhaustion:
    def test_too_many_persistent_registers(self):
        kb = KernelBuilder("k")
        regs = [kb.persistent_reg(f"p{i}") for i in range(70)]
        with kb.block("b"):
            for reg in regs:
                kb.emit("movi", dest=reg, imm=0)
        with pytest.raises(RegisterAllocationError):
            _build_and_allocate(kb.finish())

    def test_pressure_guard_keeps_wide_blocks_allocatable(self):
        """The scheduler's register-pressure guard must keep even very wide
        independent dataflow within the 64-register file."""
        kb = KernelBuilder("k")
        p = kb.param("p")
        with kb.block("b"):
            temps = [kb.emit("addi", p, imm=i) for i in range(120)]
            total = temps[-1]
            for t in reversed(temps[:-1]):
                total = kb.emit("add", total, t)
        _, mapping = _build_and_allocate(kb.finish())  # must not raise
        assert len(mapping) >= 240

"""Frames and memory layout."""

import numpy as np
import pytest

from repro.codec.frame import FrameLayout, MB_SIZE, QCIF_HEIGHT, QCIF_WIDTH, YuvFrame
from repro.errors import CodecError
from repro.memory import MainMemory


class TestYuvFrame:
    def test_blank_shapes(self):
        frame = YuvFrame.blank()
        assert frame.width == QCIF_WIDTH
        assert frame.height == QCIF_HEIGHT
        assert frame.mb_cols == 11
        assert frame.mb_rows == 9

    def test_non_macroblock_size_rejected(self):
        with pytest.raises(CodecError):
            YuvFrame(np.zeros((100, 100), dtype=np.uint8),
                     np.zeros((50, 50), dtype=np.uint8),
                     np.zeros((50, 50), dtype=np.uint8))

    def test_chroma_shape_checked(self):
        with pytest.raises(CodecError):
            YuvFrame(np.zeros((144, 176), dtype=np.uint8),
                     np.zeros((144, 176), dtype=np.uint8),
                     np.zeros((72, 88), dtype=np.uint8))

    def test_dtype_checked(self):
        with pytest.raises(CodecError):
            YuvFrame(np.zeros((144, 176), dtype=np.int16),
                     np.zeros((72, 88), dtype=np.uint8),
                     np.zeros((72, 88), dtype=np.uint8))

    def test_copy_is_deep(self):
        frame = YuvFrame.blank()
        clone = frame.copy()
        clone.y[0, 0] = 9
        assert frame.y[0, 0] != 9

    def test_psnr_identical_is_infinite(self):
        frame = YuvFrame.blank()
        assert frame.psnr_y(frame.copy()) == float("inf")

    def test_psnr_known_value(self):
        a = YuvFrame.blank(luma=128)
        b = YuvFrame.blank(luma=129)  # MSE 1 -> 48.13 dB
        assert abs(a.psnr_y(b) - 48.13) < 0.01


class TestFrameLayout:
    def test_allocation_is_32_byte_aligned(self):
        layout = FrameLayout()
        for name in ("a", "b", "c"):
            assert layout.allocate(name) % 32 == 0

    def test_planes_do_not_overlap(self):
        layout = FrameLayout()
        first = layout.allocate("a")
        second = layout.allocate("b")
        assert second >= first + layout.plane_bytes()

    def test_double_allocation_rejected(self):
        layout = FrameLayout()
        layout.allocate("a")
        with pytest.raises(CodecError):
            layout.allocate("a")

    def test_unknown_plane_rejected(self):
        with pytest.raises(CodecError):
            FrameLayout().plane_base("ghost")

    def test_pixel_address_math(self):
        layout = FrameLayout()
        base = layout.allocate("a")
        assert layout.pixel_address("a", 0, 0) == base
        assert layout.pixel_address("a", 3, 2) == base + 2 * 176 + 3

    def test_pixel_bounds_checked(self):
        layout = FrameLayout()
        layout.allocate("a")
        with pytest.raises(CodecError):
            layout.pixel_address("a", 176, 0)

    def test_store_plane_roundtrip(self):
        layout = FrameLayout()
        memory = MainMemory()
        plane = np.arange(176 * 144, dtype=np.uint32).astype(np.uint8)
        plane = plane.reshape(144, 176)
        base = layout.store_plane(memory, "a", plane)
        assert memory.load_byte(base) == plane[0, 0]
        assert memory.load_byte(base + 176 * 5 + 7) == plane[5, 7]

    def test_odd_stride_rejected(self):
        with pytest.raises(CodecError):
            FrameLayout(width=177)

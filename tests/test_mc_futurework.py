"""Motion-compensation kernels and the future-work stacking experiment."""

import pytest

from repro.experiments.futurework import run_futurework
from repro.kernels import KernelShape
from repro.kernels.mc import McKernelLibrary, build_mc_kernel
from repro.rfu.loop_model import (
    Bandwidth,
    InterpMode,
    LoopKernelModel,
    LoopKernelParams,
)


@pytest.fixture(scope="module")
def mc_library():
    return McKernelLibrary()


class TestMcKernels:
    @pytest.mark.parametrize("alignment", range(4))
    @pytest.mark.parametrize("mode", list(InterpMode))
    def test_every_shape_verifies_bit_exactly(self, mc_library, alignment,
                                              mode):
        # _measure raises if the stored block diverges from the golden
        # half-sample interpolation
        timing = mc_library.timing(KernelShape(alignment, mode))
        assert timing.cycles > 0

    def test_interpolating_modes_cost_more(self, mc_library):
        full = mc_library.static_cycles(1, InterpMode.FULL)
        for mode in (InterpMode.H, InterpMode.V, InterpMode.HV):
            assert mc_library.static_cycles(1, mode) > full

    def test_mc_cheaper_than_getsad_of_same_shape(self, mc_library):
        """MC has no reference loads and no SAD reduction."""
        from repro.kernels import KernelLibrary
        getsad = KernelLibrary("orig")
        for mode in InterpMode:
            assert mc_library.static_cycles(1, mode) \
                <= getsad.static_cycles(1, mode)

    def test_program_validates(self):
        program = build_mc_kernel(KernelShape(2, InterpMode.HV))
        program.validate()
        stores = [op for op in program.all_ops() if op.opcode == "stw"]
        assert len(stores) == 4  # one row's worth inside the loop block


class TestStoreAwareLoopModel:
    def test_stores_lengthen_the_loop(self):
        plain = LoopKernelModel(LoopKernelParams(Bandwidth.B1X32))
        storing = LoopKernelModel(LoopKernelParams(Bandwidth.B1X32,
                                                   store_words_per_row=4))
        assert storing.worst_case_latency() > plain.worst_case_latency()

    def test_bandwidth_still_helps_with_stores(self):
        latencies = [
            LoopKernelModel(LoopKernelParams(bw, store_words_per_row=4))
            .worst_case_latency()
            for bw in (Bandwidth.B1X32, Bandwidth.B1X64, Bandwidth.B2X64)]
        assert latencies[0] > latencies[1] > latencies[2]

    def test_line_buffer_b_with_stores(self):
        model = LoopKernelModel(LoopKernelParams(
            Bandwidth.B1X32, use_line_buffer_b=True, store_words_per_row=4))
        assert model.initiation_interval(3, InterpMode.HV) == 4  # store bound


class TestFutureWork:
    def test_stacking_is_monotone(self, small_context):
        table = run_futurework(small_context)
        speedups = [float(row[4]) for row in table.rows]
        assert speedups[0] == 1.0
        assert speedups == sorted(speedups)

    def test_getsad_stage_dominates_the_gain(self, small_context):
        table = run_futurework(small_context)
        speedups = [float(row[4]) for row in table.rows]
        getsad_gain = speedups[1] - speedups[0]
        mc_gain = speedups[3] - speedups[1]
        assert getsad_gain > mc_gain  # Amdahl: the 25% hotspot first

    def test_mc_cycles_shrink_per_stage(self, small_context):
        table = run_futurework(small_context)
        mc_cycles = [int(row[1].replace(",", "")) for row in table.rows]
        assert mc_cycles[1] == mc_cycles[0]       # untouched by GetSad stage
        assert mc_cycles[2] < mc_cycles[1]        # SIMD VLIW kernel
        assert mc_cycles[3] < mc_cycles[2]        # RFU loop kernel

"""GetSad VLIW kernels: bit-exactness against the golden model and the
paper's expected cost ordering."""

import pytest

from repro.codec.frame import FrameLayout
from repro.codec.sad import getsad
from repro.errors import CodecError
from repro.kernels import (
    KernelLibrary,
    KernelShape,
    VARIANTS,
    build_getsad_kernel,
    kernel_rfu_issue_width,
)
from repro.machine import Core, MachineConfig, compile_kernel
from repro.memory import MemorySystem
from repro.rfu import RfuUnit, standard_registry
from repro.rfu.loop_model import InterpMode

ALL_SHAPES = [KernelShape(alignment, mode)
              for alignment in range(4) for mode in InterpMode]


@pytest.fixture(scope="module")
def libraries():
    return {variant: KernelLibrary(variant) for variant in VARIANTS}


class TestBitExactness:
    """KernelLibrary._measure raises if a kernel's SAD diverges from the
    golden model; timing every shape therefore IS the bit-exactness test."""

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_all_shapes_verify(self, libraries, variant):
        timings = libraries[variant].all_shapes()
        assert len(timings) == 16
        for shape, timing in timings.items():
            assert timing.cycles > 0
            assert timing.ops > 0

    def test_kernel_on_frame_data(self, libraries, tiny_sequence):
        """Run the baseline kernel against real video data in simulated
        memory and compare with the golden SAD."""
        plane = tiny_sequence[0].y
        layout = FrameLayout()
        memory = MemorySystem()
        base = layout.store_plane(memory.main, "ref", plane)
        mb_x, mb_y = 48, 32
        pred_x, pred_y = 45, 30
        shape = KernelShape((base + pred_y * 176 + pred_x) % 4, InterpMode.HV)
        loaded = libraries["orig"].loaded(shape)
        core = Core(memory, RfuUnit(standard_registry()),
                    libraries["orig"].config)
        pred_addr = base + pred_y * 176 + pred_x
        result = core.run(loaded, [pred_addr - shape.alignment,
                                   base + mb_y * 176 + mb_x, 176])
        expected = getsad(plane, plane, mb_x, mb_y, pred_x, pred_y, 1, 1)
        assert result.result == expected


class TestCostOrdering:
    def test_interpolation_costs_more_than_full_pel(self, libraries):
        library = libraries["orig"]
        for alignment in range(4):
            full = library.static_cycles(alignment, InterpMode.FULL)
            for mode in (InterpMode.H, InterpMode.V, InterpMode.HV):
                assert library.static_cycles(alignment, mode) > full

    def test_diagonal_is_the_most_expensive_baseline_mode(self, libraries):
        library = libraries["orig"]
        for alignment in range(4):
            diagonal = library.static_cycles(alignment, InterpMode.HV)
            for mode in (InterpMode.FULL, InterpMode.H, InterpMode.V):
                assert diagonal > library.static_cycles(alignment, mode)

    def test_paper_variant_ordering_on_diagonal(self, libraries):
        """A1 beats the baseline; A2/A3 beat A1 (Table 1's shape)."""
        for alignment in range(4):
            orig = libraries["orig"].static_cycles(alignment, InterpMode.HV)
            a1 = libraries["a1"].static_cycles(alignment, InterpMode.HV)
            a2 = libraries["a2"].static_cycles(alignment, InterpMode.HV)
            a3 = libraries["a3"].static_cycles(alignment, InterpMode.HV)
            assert orig > a1 > a2
            assert a3 <= a2

    def test_variants_share_non_diagonal_paths(self, libraries):
        """A1/A2/A3 modify only the diagonal interpolation."""
        for mode in (InterpMode.FULL, InterpMode.H, InterpMode.V):
            costs = {variant: libraries[variant].static_cycles(1, mode)
                     for variant in VARIANTS}
            assert len(set(costs.values())) == 1, costs


class TestBuilders:
    def test_unknown_variant_rejected(self):
        with pytest.raises(CodecError):
            build_getsad_kernel("a9", KernelShape(0, InterpMode.FULL))
        with pytest.raises(CodecError):
            KernelLibrary("a9")

    def test_bad_alignment_rejected(self):
        with pytest.raises(CodecError):
            KernelShape(5, InterpMode.FULL)

    def test_rfu_issue_width_per_variant(self):
        assert kernel_rfu_issue_width("orig") == 1
        assert kernel_rfu_issue_width("a1") == 4
        assert kernel_rfu_issue_width("a2") == 1
        with pytest.raises(CodecError):
            kernel_rfu_issue_width("zz")

    def test_shape_labels_unique(self):
        labels = {shape.label for shape in ALL_SHAPES}
        assert len(labels) == 16

    def test_programs_validate_and_fit_registers(self):
        for variant in VARIANTS:
            for shape in ALL_SHAPES:
                program = build_getsad_kernel(variant, shape)
                program.validate()
                rfu = RfuUnit(standard_registry())
                config = MachineConfig().with_rfu_issue(
                    kernel_rfu_issue_width(variant))
                compile_kernel(program, rfu, config)  # must not raise

    def test_words_per_row_matches_geometry(self):
        assert KernelShape(0, InterpMode.FULL).words_per_row == 4
        assert KernelShape(3, InterpMode.HV).words_per_row == 5


class TestTimingStability:
    def test_timing_is_cached_and_deterministic(self, libraries):
        library = libraries["orig"]
        shape = KernelShape(2, InterpMode.H)
        first = library.timing(shape)
        second = library.timing(shape)
        assert first is second
        fresh = KernelLibrary("orig").timing(shape)
        assert fresh.cycles == first.cycles

"""Scenario definitions, trace replay, and the exploration driver."""

import pytest

from repro.core import (
    Exploration,
    ExplorationConfig,
    INSTRUCTION_SCENARIOS,
    LOOP_SCENARIOS,
    Scenario,
    TraceReplayer,
    all_scenarios,
    instruction_scenario,
    loop_scenario,
)
from repro.core.scenarios import TWO_LINE_BUFFER_SCENARIOS
from repro.errors import ExperimentError
from repro.rfu.loop_model import Bandwidth


class TestScenarios:
    def test_catalog_sizes(self):
        assert len(INSTRUCTION_SCENARIOS) == 4
        assert len(LOOP_SCENARIOS) == 6
        assert len(TWO_LINE_BUFFER_SCENARIOS) == 2
        assert len(all_scenarios()) == 12

    def test_names_unique(self):
        names = [scenario.name for scenario in all_scenarios()]
        assert len(set(names)) == len(names)

    def test_loop_scenarios_extend_prefetch_buffer(self):
        scenario = loop_scenario(Bandwidth.B1X32)
        assert scenario.prefetch_entries == 64
        assert scenario.software_prefetch

    def test_instruction_scenarios_keep_baseline_buffer(self):
        assert instruction_scenario("orig").prefetch_entries == 8

    def test_invalid_scenarios_rejected(self):
        with pytest.raises(ExperimentError):
            Scenario(name="x", kind="instruction")
        with pytest.raises(ExperimentError):
            Scenario(name="x", kind="loop")
        with pytest.raises(ExperimentError):
            Scenario(name="x", kind="quantum", variant="orig")


class TestReplay:
    @pytest.fixture(scope="class")
    def context(self, small_context):
        return small_context

    def test_baseline_replay(self, context):
        baseline = context.baseline()
        assert baseline.invocations == \
            len(context.exploration.encoder_report.trace)
        assert baseline.static_cycles > 0
        assert baseline.stall_cycles > 0
        assert baseline.total_cycles \
            == baseline.static_cycles + baseline.stall_cycles

    def test_instruction_variants_share_stalls(self, context):
        baseline = context.baseline()
        for variant in ("a1", "a2", "a3"):
            result = context.result(instruction_scenario(variant))
            assert result.stall_cycles == baseline.stall_cycles
            assert result.static_cycles <= baseline.static_cycles

    def test_loop_speedup_beats_instruction_level(self, context):
        a3 = context.speedup(instruction_scenario("a3"))
        loop = context.speedup(loop_scenario(Bandwidth.B1X32))
        assert loop > a3 > 1.0

    def test_bandwidth_scales_speedup(self, context):
        speedups = [context.speedup(loop_scenario(bw))
                    for bw in (Bandwidth.B1X32, Bandwidth.B1X64,
                               Bandwidth.B2X64)]
        assert speedups[0] < speedups[1] < speedups[2]

    def test_technology_scaling_costs_speedup(self, context):
        for bandwidth in Bandwidth:
            fast = context.speedup(loop_scenario(bandwidth, 1.0))
            slow = context.speedup(loop_scenario(bandwidth, 5.0))
            assert slow < fast

    def test_two_line_buffers_beat_one(self, context):
        one = context.result(loop_scenario(Bandwidth.B1X32))
        two = context.result(loop_scenario(Bandwidth.B1X32,
                                           line_buffer_b=True))
        assert two.total_cycles < one.total_cycles
        assert two.lb_reuse > 0

    def test_loop_scenarios_report_latency(self, context):
        result = context.result(loop_scenario(Bandwidth.B1X32))
        assert result.worst_loop_latency is not None
        assert context.baseline().worst_loop_latency is None

    def test_empty_trace_rejected(self):
        from repro.codec.tracer import MeTrace
        replayer = TraceReplayer(MeTrace())
        with pytest.raises(ExperimentError):
            replayer.replay(instruction_scenario("orig"))

    def test_alignment_distribution_nontrivial(self, context):
        trace = context.exploration.encoder_report.trace
        histogram = trace.alignment_histogram(176)
        assert all(count > 0 for count in histogram.values())


class TestExploration:
    def test_run_includes_baseline_automatically(self, small_context):
        exploration = small_context.exploration
        result = exploration.run([loop_scenario(Bandwidth.B1X32)])
        assert "orig" in result.results
        assert result.speedup("loop_1x32_b1") > 1.0

    def test_me_fraction_decreases_with_speedup(self, small_context):
        exploration = small_context.exploration
        result = exploration.run([loop_scenario(Bandwidth.B1X32)])
        assert result.me_fraction("loop_1x32_b1") \
            < result.me_fraction("orig")

    def test_application_cycles_composition(self, small_context):
        exploration = small_context.exploration
        result = exploration.run([])
        assert result.application_cycles("orig") \
            == result.non_me_cycles + result.baseline.total_cycles

    def test_missing_scenario_raises(self, small_context):
        result = small_context.exploration.run([])
        with pytest.raises(ExperimentError):
            result.result("loop_9x99_b1")

    def test_missing_baseline_raises(self):
        from repro.core.exploration import ExplorationResult
        empty = ExplorationResult(ExplorationConfig(), None, {}, 0)
        with pytest.raises(ExperimentError):
            empty.baseline

    def test_encoder_report_cached(self, small_context):
        exploration = small_context.exploration
        assert exploration.encoder_report is exploration.encoder_report

    def test_improvement_percent_consistent(self, small_context):
        exploration = small_context.exploration
        result = exploration.run([instruction_scenario("a2")])
        speedup = result.speedup("a2")
        improvement = result.improvement_percent("a2")
        assert improvement == pytest.approx(100.0 * (1 - 1 / speedup))

"""The macroblock prefetch-pattern engine (rfupft)."""

import pytest

from repro.errors import RfuError
from repro.memory import LineBufferA, LineBufferB, MemorySystem, MemoryTimings
from repro.memory.linebuffer import MACROBLOCK_ROWS
from repro.rfu.prefetch_ops import (
    MacroblockPrefetchEngine,
    macroblock_row_addresses,
)


def _memory():
    return MemorySystem(MemoryTimings(prefetch_entries=64, bus_latency=30,
                                      bus_service_interval=4,
                                      hardware_next_line_prefetch=False))


class TestRowAddresses:
    def test_stride_walk(self):
        rows = macroblock_row_addresses(0x1000, 176, 3)
        assert rows == [(0x1000, 16), (0x1000 + 176, 16), (0x1000 + 352, 16)]

    def test_row_bytes(self):
        rows = macroblock_row_addresses(0, 176, 1, row_bytes=17)
        assert rows[0] == (0, 17)


class TestPredictorPattern:
    def test_prefetches_every_line_with_crossings(self):
        memory = _memory()
        engine = MacroblockPrefetchEngine(memory)
        # base 28 bytes into a line: rows alternate between crossing a line
        # boundary (offset 28 + 17 > 32) and fitting in one line (offset 12)
        expected = sum(
            len(memory.dcache.lines_for_range(0x101C + row * 176, 17))
            for row in range(17))
        issued = engine.prefetch_macroblock(0x101C, 176, rows=17, cycle=0)
        assert issued == expected
        assert issued > 17  # at least one crossing issued the extra prefetch

    def test_skips_cached_lines(self):
        memory = _memory()
        engine = MacroblockPrefetchEngine(memory)
        for row in range(17):
            for line in memory.dcache.lines_for_range(0x1000 + row * 176, 17):
                memory.load_word(line, 0)
        issued = engine.prefetch_macroblock(0x1000, 176, rows=17, cycle=10)
        assert issued == 0

    def test_counts_patterns(self):
        memory = _memory()
        engine = MacroblockPrefetchEngine(memory)
        engine.prefetch_macroblock(0x1000, 176, 16, 0)
        engine.prefetch_macroblock(0x9000, 176, 16, 0)
        assert engine.issued_patterns == 2


class TestLineBufferAFill:
    def test_fill_sets_all_rows(self):
        memory = _memory()
        buffer_a = LineBufferA()
        engine = MacroblockPrefetchEngine(memory, line_buffer_a=buffer_a)
        engine.fill_line_buffer_a(0x2000, 176, cycle=0)
        assert buffer_a.holds(0x2000)
        assert all(ready is not None for ready in buffer_a.ready)

    def test_rows_complete_in_sequence(self):
        memory = _memory()
        buffer_a = LineBufferA()
        engine = MacroblockPrefetchEngine(memory, line_buffer_a=buffer_a)
        engine.fill_line_buffer_a(0x2000, 176, cycle=0)
        assert buffer_a.ready == sorted(buffer_a.ready)

    def test_cached_rows_complete_at_access_latency(self):
        memory = _memory()
        buffer_a = LineBufferA()
        engine = MacroblockPrefetchEngine(memory, line_buffer_a=buffer_a)
        for row in range(MACROBLOCK_ROWS):
            memory.load_word((0x2000 + row * 176) & ~3, 0)
        engine.fill_line_buffer_a(0x2000, 176, cycle=100)
        assert all(ready <= 100 + MACROBLOCK_ROWS + 2
                   for ready in buffer_a.ready)

    def test_requires_buffer(self):
        engine = MacroblockPrefetchEngine(_memory())
        with pytest.raises(RfuError):
            engine.fill_line_buffer_a(0, 176, 0)


class TestLineBufferBFill:
    def test_returns_per_row_lines(self):
        memory = _memory()
        buffer_b = LineBufferB(memory)
        engine = MacroblockPrefetchEngine(memory, line_buffer_b=buffer_b)
        per_row = engine.fill_line_buffer_b(0x3000, 176, rows=17, cycle=0)
        assert len(per_row) == 17
        for lines in per_row:
            for line in lines:
                assert line % 32 == 0

    def test_requires_buffer(self):
        engine = MacroblockPrefetchEngine(_memory())
        with pytest.raises(RfuError):
            engine.fill_line_buffer_b(0, 176, 17, 0)


class TestDispatch:
    def test_pattern_selector(self):
        memory = _memory()
        buffer_a = LineBufferA()
        buffer_b = LineBufferB(memory)
        engine = MacroblockPrefetchEngine(memory, buffer_a, buffer_b)
        engine.issue((engine.PATTERN_PREDICTOR, 0x1000, 176, 17), 0)
        engine.issue((engine.PATTERN_REFERENCE_LB_A, 0x2000, 176, 16), 0)
        engine.issue((engine.PATTERN_PREDICTOR_LB_B, 0x3000, 176, 17), 0)
        assert engine.issued_patterns == 3

    def test_bad_pattern_rejected(self):
        engine = MacroblockPrefetchEngine(_memory())
        with pytest.raises(RfuError):
            engine.issue((9, 0, 0, 0), 0)

    def test_bad_arity_rejected(self):
        engine = MacroblockPrefetchEngine(_memory())
        with pytest.raises(RfuError):
            engine.issue((0, 0), 0)

"""Framing failure semantics of the shared JSON-lines plumbing.

Both network fabrics ride on :mod:`repro.jsonlines`, so its edges are
pinned here once: an oversize request line is rejected with a structured
code (then the connection closes — a JSON-lines stream cannot re-frame
mid-line), truncated or garbage response frames surface as the client's
structured ``unavailable_error``, and the client's request lock keeps
concurrent writers (a heartbeat thread sharing a worker's connection)
from interleaving frames.
"""

import asyncio
import json
import socket
import threading

import pytest

from repro.errors import ReproError, ServiceUnavailable
from repro.jsonlines import MAX_LINE_BYTES, JsonLinesClient, JsonLinesServer


class _FramingError(ReproError):
    code = "REPRO-TEST-FRAME"
    hint = "shrink the request line"


class _EchoServer(JsonLinesServer):
    """Echoes ``value`` back with the connection's request counter."""

    frame_error = _FramingError

    async def respond(self, line, state, requests):
        request = json.loads(line)
        return {"ok": True, "echo": request.get("value"),
                "n": requests}, False


class _EchoHarness:
    """One event-loop thread hosting an :class:`_EchoServer`."""

    def __init__(self, **server_kwargs):
        self.server = _EchoServer("127.0.0.1", 0, **server_kwargs)
        self.loop = asyncio.new_event_loop()
        ready = threading.Event()

        def run():
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.server.start())
            ready.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        assert ready.wait(10)

    @property
    def port(self):
        return self.server.port

    def stop(self):
        asyncio.run_coroutine_threadsafe(self.server.stop(),
                                         self.loop).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)


@pytest.fixture()
def echo():
    harness = _EchoHarness(max_line_bytes=1024)
    yield harness
    harness.stop()


def _raw_line_server(lines):
    """A one-connection TCP server that reads one request line, writes
    the raw byte strings from ``lines`` verbatim (no framing discipline
    at all), and closes.  Returns its bound port."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)

    def serve():
        conn, _ = listener.accept()
        with conn:
            handle = conn.makefile("rwb")
            handle.readline()              # consume the request cleanly
            for raw in lines:
                handle.write(raw)
            handle.flush()
        listener.close()

    threading.Thread(target=serve, daemon=True).start()
    return listener.getsockname()[1]


class TestServerFraming:
    def test_round_trip_counts_requests(self, echo):
        with JsonLinesClient(port=echo.port) as client:
            assert client.request({"value": "a"})["echo"] == "a"
            assert client.request({"value": "b"})["n"] == 2

    def test_oversize_line_is_structured_then_closed(self, echo):
        with JsonLinesClient(port=echo.port) as client:
            client._file.write(b'{"value": "' + b"x" * 2048 + b'"}\n')
            client._file.flush()
            rejection = json.loads(client._file.readline())
            assert rejection["ok"] is False
            assert rejection["code"] == _FramingError.code
            assert rejection["hint"] == _FramingError.hint
            assert "1024-byte limit" in rejection["error"]
            # mid-line there is no way to resynchronise: the server
            # closes after rejecting, and the client sees clean EOF
            assert client._file.readline() == b""

    def test_oversize_rejection_raises_through_request(self, echo):
        with JsonLinesClient(port=echo.port) as client:
            with pytest.raises(ReproError):
                client.request({"value": "x" * 2048})

    def test_default_line_limit_is_generous(self):
        assert MAX_LINE_BYTES >= 16 * 1024 * 1024


class TestClientFraming:
    def test_truncated_response_is_unavailable(self):
        port = _raw_line_server([b'{"ok": true'])   # no trailing newline
        with JsonLinesClient(port=port) as client:
            with pytest.raises(ServiceUnavailable) as exc_info:
                client.request({"op": "x"})
            assert "truncated" in str(exc_info.value)

    def test_garbage_response_is_unavailable(self):
        port = _raw_line_server([b"!!! not json !!!\n"])
        with JsonLinesClient(port=port) as client:
            with pytest.raises(ServiceUnavailable) as exc_info:
                client.request({"op": "x"})
            assert "malformed" in str(exc_info.value)

    def test_non_object_response_is_unavailable(self):
        port = _raw_line_server([b"[1, 2, 3]\n"])
        with JsonLinesClient(port=port) as client:
            with pytest.raises(ServiceUnavailable):
                client.request({"op": "x"})

    def test_closed_connection_is_unavailable(self):
        port = _raw_line_server([])                  # close immediately
        with JsonLinesClient(port=port) as client:
            with pytest.raises(ServiceUnavailable) as exc_info:
                client.request({"op": "x"})
            assert "closed the connection" in str(exc_info.value)


class TestConcurrentWriters:
    def test_shared_client_never_interleaves_frames(self, echo):
        """8 threads share one connection; the request lock must pair
        every response with its own request (the heartbeat-over-the-
        worker-connection pattern)."""
        threads, rounds = 8, 25
        client = JsonLinesClient(port=echo.port)
        barrier = threading.Barrier(threads)
        failures = []

        def worker(me):
            try:
                barrier.wait(timeout=10)
                for index in range(rounds):
                    value = f"w{me}-{index}"
                    response = client.request({"value": value})
                    assert response["echo"] == value
            except Exception as exc:  # noqa: BLE001 -- surfaced below
                failures.append(exc)

        pool = [threading.Thread(target=worker, args=(me,))
                for me in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(timeout=30)
            assert not thread.is_alive(), "writer hung"
        client.close()
        if failures:
            raise failures[0]

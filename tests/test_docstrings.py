"""Documentation gate: every module under ``src/repro`` is documented.

CI runs this file as a dedicated docs check.  The experiment, sweep and
exploration modules additionally carry *multi-line* docstrings — ``pydoc
repro.experiments.table1`` must explain which paper artefact the module
reproduces and which knobs it sweeps, not just restate its name.
"""

import ast
import pathlib

import pytest

SRC = pathlib.Path(__file__).parent.parent / "src" / "repro"
MODULES = sorted(SRC.rglob("*.py"))

#: modules whose docstrings must be substantial (> 1 line): the documented
#: surface of the experiments pipeline and its orchestration
REFERENCE_MODULES = sorted(
    list(SRC.glob("experiments/*.py"))
    + list(SRC.glob("sweep/*.py"))
    + [SRC / "core" / "exploration.py"]
)


def _docstring(path: pathlib.Path):
    return ast.get_docstring(ast.parse(path.read_text(encoding="utf-8")))


@pytest.mark.parametrize("path", MODULES,
                         ids=[str(p.relative_to(SRC)) for p in MODULES])
def test_every_module_has_a_docstring(path):
    doc = _docstring(path)
    assert doc and doc.strip(), f"{path} has no module docstring"


@pytest.mark.parametrize(
    "path", REFERENCE_MODULES,
    ids=[str(p.relative_to(SRC)) for p in REFERENCE_MODULES])
def test_reference_modules_have_substantial_docstrings(path):
    doc = _docstring(path)
    assert doc and len(doc.strip().splitlines()) > 1, (
        f"{path} needs a multi-line module docstring (what paper artefact "
        f"it reproduces and which knobs it sweeps)")

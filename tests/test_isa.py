"""ISA layer: opcode table, registers, Operation/Bundle validation."""

import pytest

from repro.errors import IsaError
from repro.isa import (
    OPCODES,
    Bundle,
    Operation,
    Resource,
    ZERO,
    br,
    gpr,
    opcode_spec,
    vreg,
)
from repro.isa.instruction import format_schedule
from repro.isa.registers import NUM_BR, NUM_GPR


class TestRegisters:
    def test_gpr_range(self):
        assert gpr(0) is not None
        assert gpr(NUM_GPR - 1).index == NUM_GPR - 1
        with pytest.raises(IsaError):
            gpr(NUM_GPR)
        with pytest.raises(IsaError):
            gpr(-1)

    def test_br_range(self):
        assert br(NUM_BR - 1).index == NUM_BR - 1
        with pytest.raises(IsaError):
            br(NUM_BR)

    def test_zero_register(self):
        assert ZERO == gpr(0)

    def test_vregs_are_unique(self):
        assert vreg("a") != vreg("a")

    def test_vreg_branch_flag(self):
        assert vreg("c", is_branch=True).is_branch
        assert not vreg("c").is_branch

    def test_repr(self):
        assert repr(gpr(5)) == "$r5"
        assert repr(br(2)) == "$b2"
        assert repr(vreg("x")).startswith("%v")


class TestOpcodeTable:
    def test_all_specs_consistent(self):
        for name, spec in OPCODES.items():
            assert spec.name == name
            assert isinstance(spec.resource, Resource)
            if spec.latency is not None:
                assert spec.latency >= 1

    def test_resource_classes(self):
        assert opcode_spec("add").resource is Resource.ALU
        assert opcode_spec("mul").resource is Resource.MUL
        assert opcode_spec("ldw").resource is Resource.LSU
        assert opcode_spec("br").resource is Resource.BRANCH
        assert opcode_spec("rfuexec").resource is Resource.RFU

    def test_memory_flags(self):
        assert opcode_spec("ldw").is_load
        assert opcode_spec("stw").is_store
        assert opcode_spec("pft").is_prefetch
        assert not opcode_spec("add").is_load

    def test_branch_flags(self):
        for name in ("br", "brf", "goto"):
            assert opcode_spec(name).is_branch

    def test_compare_writes_branch_register(self):
        assert opcode_spec("cmpeq").writes_branch_reg
        assert not opcode_spec("add").writes_branch_reg

    def test_rfu_latency_is_dynamic(self):
        assert opcode_spec("rfuexec").latency is None

    def test_unknown_opcode(self):
        with pytest.raises(IsaError):
            opcode_spec("fnord")


class TestOperation:
    def test_arity_checked(self):
        with pytest.raises(IsaError):
            Operation("add", dest=vreg(), srcs=(vreg(),))  # needs 2 srcs

    def test_dest_required(self):
        with pytest.raises(IsaError):
            Operation("add", srcs=(vreg(), vreg()))

    def test_dest_forbidden(self):
        with pytest.raises(IsaError):
            Operation("stw", dest=vreg(), srcs=(vreg(), vreg()))

    def test_branch_needs_label(self):
        with pytest.raises(IsaError):
            Operation("goto")
        Operation("goto", label="loop")  # fine

    def test_variadic_rfu_ops(self):
        Operation("rfusend", srcs=(vreg(), vreg(), vreg()), imm=3)
        Operation("rfuexec", dest=vreg(), srcs=(), imm=3)

    def test_renamed_preserves_everything(self):
        a, b, d = vreg("a"), vreg("b"), vreg("d")
        op = Operation("add", dest=d, srcs=(a, b), comment="x")
        renamed = op.renamed(lambda r: gpr(1) if r is a else r)
        assert renamed.srcs[0] == gpr(1)
        assert renamed.srcs[1] is b
        assert renamed.opcode == "add"

    def test_repr_contains_opcode(self):
        op = Operation("movi", dest=vreg(), imm=7)
        assert "movi" in repr(op)
        assert "#7" in repr(op)


class TestBundle:
    def test_len_and_iter(self):
        ops = [Operation("movi", dest=vreg(), imm=i) for i in range(3)]
        bundle = Bundle(ops)
        assert len(bundle) == 3
        assert list(bundle) == ops

    def test_size_constant(self):
        assert Bundle.SIZE_BYTES == 16

    def test_format_schedule(self):
        text = format_schedule([Bundle(), Bundle([Operation("movi",
                                                            dest=vreg(),
                                                            imm=1)])])
        assert "nop" in text
        assert "movi" in text

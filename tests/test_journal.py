"""The write-ahead journal and both fabrics' crash recovery.

The load-bearing guarantees:

* the journal itself: append/commit round trips, segment rotation,
  gapless seq numbering across a reopen, and the torn-tail rule — a
  half-written (or unterminated) final record never committed, is
  skipped by the reader and truncated by the writer;
* every corruption shape is **structured** (``REPRO-JRN-*``), never an
  unhandled exception: garbage mid-stream, a CRC mismatch, a sequence
  break, an empty or absent journal;
* sweep-coordinator recovery (:func:`recover_from_journal`): committed
  results are restored, outstanding leases requeue at attempt + 1,
  duplicate commits resolve last-wins; the orchestrator refuses a
  journal written by a different (workload, code) tree
  (``REPRO-JRN-MISMATCH``);
* lease-table recovery edges: a lease granted but never beaten expires
  on its grant deadline, and an expired-at-recovery lease is revocable
  immediately;
* codec-service recovery: a restarted service restores every open
  stream from its last journaled checkpoint; clients resubmit
  idempotently by sequence number (duplicates re-deliver the journaled
  result, never re-encode) and the bitstream assembled across the
  restart is **byte-identical** to an uninterrupted encode;
* the ``coordkill`` chaos path end to end: a journaled distributed
  sweep SIGKILLed mid-commit resumes via ``--resume-journal`` into a
  ``sweep_report.json`` byte-identical to a serial run.
"""

import json
import os
import pathlib
import shutil
import subprocess
import sys

import pytest

from repro import faults, supervise
from repro.codec import (
    EncoderConfig,
    Mpeg4Encoder,
    SyntheticSequenceConfig,
    synthetic_sequence,
)
from repro.errors import (
    ExperimentError,
    JournalCorrupt,
    JournalEmpty,
    JournalMismatch,
    ServiceProtocolError,
)
from repro.journal import (
    Journal,
    JournalWriter,
    latest_by_key,
    load_journal,
    read_journal,
    record_crc,
    segment_paths,
)
from repro.serve import CodecService, StreamConfig
from repro.sweep import SweepConfig, run_sweep
from repro.sweep.distributed import recover_from_journal
from repro.sweep.orchestrator import _resume_from_journal


@pytest.fixture(autouse=True)
def _no_fault_plan():
    faults.clear()
    yield
    faults.clear()


def _fill(root, count=5, **extra):
    """A committed journal of ``count`` simple records."""
    with Journal(root) as journal:
        for index in range(count):
            journal.write("tick", index=index, **extra)
    return root


class TestWriterReaderRoundTrip:
    def test_append_commit_read(self, tmp_path):
        with Journal(tmp_path / "j") as journal:
            journal.write("open", stream="s0")
            journal.append("beat", n=1)
            journal.append("beat", n=2)
            journal.commit()
        records = load_journal(tmp_path / "j")
        assert [r["type"] for r in records] == ["open", "beat", "beat"]
        assert [r["seq"] for r in records] == [0, 1, 2]
        assert all(r["crc"] == record_crc(r) for r in records)

    def test_rotation_spans_segments(self, tmp_path):
        with JournalWriter(tmp_path / "j", max_segment_bytes=64) as writer:
            for index in range(20):
                writer.append("tick", index=index)
            writer.commit()
        assert len(segment_paths(tmp_path / "j")) > 1
        records = load_journal(tmp_path / "j")
        assert [r["index"] for r in records] == list(range(20))

    def test_reopen_continues_seq_gapless(self, tmp_path):
        _fill(tmp_path / "j", count=3)
        with Journal(tmp_path / "j") as journal:
            assert journal.writer.seq == 3
            journal.write("tick", index=3)
        assert [r["seq"] for r in load_journal(tmp_path / "j")] \
            == [0, 1, 2, 3]

    def test_closed_property(self, tmp_path):
        journal = Journal(tmp_path / "j")
        assert not journal.closed
        journal.close()
        assert journal.closed

    def test_latest_by_key_is_last_wins(self):
        records = [{"type": "commit", "cell": "a", "v": 1},
                   {"type": "commit", "cell": "b", "v": 2},
                   {"type": "commit", "cell": "a", "v": 3}]
        index = latest_by_key(records, "commit", "cell")
        assert index["a"]["v"] == 3
        assert index["b"]["v"] == 2


class TestTornTail:
    def test_truncated_final_record_is_skipped(self, tmp_path):
        root = _fill(tmp_path / "j", count=4)
        last = segment_paths(root)[-1]
        raw = last.read_bytes()
        last.write_bytes(raw[:-10])   # chop mid-record, no newline
        assert [r["index"] for r in load_journal(root)] == [0, 1, 2]

    def test_unterminated_valid_final_line_never_committed(self, tmp_path):
        root = _fill(tmp_path / "j", count=3)
        last = segment_paths(root)[-1]
        # strip only the trailing newline: the bytes parse, but the
        # record is torn by the one-byte-earlier signature
        last.write_bytes(last.read_bytes()[:-1])
        assert [r["index"] for r in load_journal(root)] == [0, 1]

    def test_reopen_truncates_and_appends_cleanly(self, tmp_path):
        root = _fill(tmp_path / "j", count=4)
        last = segment_paths(root)[-1]
        last.write_bytes(last.read_bytes()[:-10])
        with Journal(root) as journal:
            assert journal.writer.seq == 3   # the torn record is gone
            journal.write("tick", index=99)
        records = load_journal(root)
        assert [r["seq"] for r in records] == [0, 1, 2, 3]
        assert records[-1]["index"] == 99


class TestCorruptionIsStructured:
    def test_garbage_mid_stream_raises_corrupt(self, tmp_path):
        root = _fill(tmp_path / "j", count=4)
        last = segment_paths(root)[-1]
        lines = last.read_bytes().splitlines(keepends=True)
        lines[1] = b"@@ not json @@\n"
        last.write_bytes(b"".join(lines))
        with pytest.raises(JournalCorrupt) as excinfo:
            load_journal(root)
        assert excinfo.value.code == "REPRO-JRN-CORRUPT"
        assert "mid-stream" in str(excinfo.value)

    def test_crc_mismatch_mid_stream_raises_corrupt(self, tmp_path):
        root = _fill(tmp_path / "j", count=4)
        last = segment_paths(root)[-1]
        lines = last.read_bytes().splitlines(keepends=True)
        # flip payload bytes without touching the stored crc
        lines[1] = lines[1].replace(b'"index": 1', b'"index": 7')
        last.write_bytes(b"".join(lines))
        with pytest.raises(JournalCorrupt):
            load_journal(root)

    def test_seq_break_mid_stream_raises_corrupt(self, tmp_path):
        root = _fill(tmp_path / "j", count=4)
        last = segment_paths(root)[-1]
        lines = last.read_bytes().splitlines(keepends=True)
        del lines[1]
        last.write_bytes(b"".join(lines))
        with pytest.raises(JournalCorrupt) as excinfo:
            load_journal(root)
        assert "sequence break" in str(excinfo.value)

    def test_missing_journal_raises_empty(self, tmp_path):
        with pytest.raises(JournalEmpty) as excinfo:
            load_journal(tmp_path / "nope")
        assert excinfo.value.code == "REPRO-JRN-EMPTY"

    def test_journal_with_no_records_raises_empty(self, tmp_path):
        Journal(tmp_path / "j").close()   # creates an empty segment
        with pytest.raises(JournalEmpty):
            load_journal(tmp_path / "j")

    def test_missing_ok_reader_yields_nothing(self, tmp_path):
        assert list(read_journal(tmp_path / "nope", missing_ok=True)) == []

    def test_writer_refuses_a_corrupt_journal(self, tmp_path):
        root = _fill(tmp_path / "j", count=4)
        last = segment_paths(root)[-1]
        lines = last.read_bytes().splitlines(keepends=True)
        lines[0] = b"garbage\n"
        last.write_bytes(b"".join(lines))
        with pytest.raises(JournalCorrupt):
            JournalWriter(root)


class TestCoordinatorRecovery:
    @staticmethod
    def _grant(cell, attempt=0):
        return {"type": "lease_grant", "cell": cell, "attempt": attempt}

    @staticmethod
    def _release(cell, attempt=0):
        return {"type": "lease_release", "cell": cell, "attempt": attempt}

    @staticmethod
    def _commit(cell, attempt=0, rendered="x"):
        return {"type": "result_commit", "cell": cell, "attempt": attempt,
                "worker": "w0", "result": {"rendered": rendered,
                                           "wall_s": 0.1, "error": None,
                                           "cycles": None, "attempts": 1}}

    def test_committed_results_restore_and_leases_requeue(self):
        records = [self._grant("a"), self._commit("a"),
                   self._grant("b", attempt=1)]
        results, requeue, stats = recover_from_journal(records)
        assert results["a"].rendered == "x"
        assert requeue == {"b": 2}   # interrupted lease: attempt + 1
        assert stats == {"results": 1, "requeued": 1,
                         "duplicate_commits": 0}

    def test_released_lease_is_not_requeued(self):
        records = [self._grant("a"), self._release("a")]
        _, requeue, _ = recover_from_journal(records)
        assert requeue == {}

    def test_duplicate_commits_resolve_last_wins(self):
        records = [self._commit("a", rendered="old"),
                   self._commit("a", rendered="new")]
        results, _, stats = recover_from_journal(records)
        assert results["a"].rendered == "new"
        assert stats["duplicate_commits"] == 1

    def test_commit_wins_over_outstanding_lease(self):
        # the coordkill window: result committed, release never written
        records = [self._grant("a"), self._commit("a")]
        results, requeue, _ = recover_from_journal(records)
        assert "a" in results and requeue == {}

    def test_resume_refuses_identity_mismatch(self, tmp_path):
        identity = {"workload": {"frames": 3}, "frames": 3, "seed": 2002,
                    "cell_versions": {}, "keys": {}}
        with Journal(tmp_path / "j") as journal:
            journal.write("sweep_identity", **dict(identity, frames=25))
        with pytest.raises(JournalMismatch) as excinfo:
            _resume_from_journal(tmp_path / "j", identity)
        assert excinfo.value.code == "REPRO-JRN-MISMATCH"

    def test_resume_requires_an_identity_record(self, tmp_path):
        with Journal(tmp_path / "j") as journal:
            journal.write("lease_grant", cell="a", attempt=0)
        with pytest.raises(JournalMismatch):
            _resume_from_journal(tmp_path / "j", {"frames": 3})

    def test_resume_replays_a_matching_journal(self, tmp_path):
        identity = {"workload": {"frames": 3}, "frames": 3, "seed": 2002,
                    "cell_versions": {}, "keys": {}}
        with Journal(tmp_path / "j") as journal:
            journal.write("sweep_identity", **identity)
            journal.write("lease_grant", cell="a", attempt=0)
        _, requeue, _ = _resume_from_journal(tmp_path / "j", identity)
        assert requeue == {"a": 1}

    def test_journal_flags_require_distributed(self, tmp_path):
        with pytest.raises(ExperimentError, match="--distributed"):
            run_sweep(SweepConfig(frames=3, root=tmp_path,
                                  journal_dir=tmp_path / "j"))


class TestLeaseRecoveryEdges:
    def test_granted_never_beaten_expires_on_grant_deadline(self):
        table = supervise.LeaseTable(budget_s=1.0)
        table.grant("a", 0, now=100.0)
        assert table.expired(now=100.5) == []
        expired = table.expired(now=101.5)
        assert [lease.key for lease in expired] == ["a"]

    def test_expired_at_recovery_is_revocable_immediately(self):
        # a journal-restored lease whose holder died long ago: the
        # first expiry sweep after recovery must reap it at once
        table = supervise.LeaseTable(budget_s=0.5)
        table.grant("a", 2, now=0.0)
        expired = table.expired(now=1000.0)
        assert expired and expired[0].attempt == 2
        table.release("a")
        assert table.expired(now=2000.0) == []


class TestControlKillFaults:
    def test_new_kinds_are_registered(self):
        assert "coordkill" in faults.KINDS
        assert "svckill" in faults.KINDS

    def test_decide_fires_once_then_never_again(self):
        faults.install("svckill:s0000:times=1")
        plan = faults.active()
        assert plan.decide("svckill", "s0000", 0) is not None
        assert plan.decide("svckill", "s0000", 1) is None
        assert plan.decide("svckill", "other", 0) is None

    def test_control_kill_without_a_plan_is_a_noop(self):
        faults.clear()
        faults.control_kill("coordkill", "anything")   # must not exit


# -- codec-service restart recovery -------------------------------------------

def _frames(count, seed=2002):
    return synthetic_sequence(SyntheticSequenceConfig(
        width=64, height=48, frames=count, seed=seed))


def _one_shot(frames, **knobs):
    return Mpeg4Encoder(EncoderConfig(**knobs)).encode(frames).serialize()


class TestServiceRestart:
    def _run_segments(self, service, stream, frames, start, stop, per=2):
        for index in range(start, stop):
            service.submit_segment(stream, frames[index * per:
                                                  (index + 1) * per],
                                   seq=index)

    def test_restart_restores_stream_byte_identical(self, tmp_path):
        frames = _frames(8)
        reference = _one_shot(frames, qp=10)
        journal = tmp_path / "journal"
        with CodecService(workers=0, journal_dir=journal) as service:
            stream = service.open_stream(StreamConfig(qp=10))
            self._run_segments(service, stream, frames, 0, 2)
            service.collect(stream)
            # no close: the service dies here with the stream open
        with CodecService(workers=0, journal_dir=journal) as revived:
            stats = revived.stats()["totals"]
            assert stats["streams_restored"] == 1
            self._run_segments(revived, stream, frames, 2, 4)
            summary = revived.close_stream(stream)
        assert summary.payload == reference
        assert summary.segments == 4

    def test_restart_restores_on_a_worker_pool(self, tmp_path):
        frames = _frames(8)
        reference = _one_shot(frames, qp=10)
        journal = tmp_path / "journal"
        with CodecService(workers=1, journal_dir=journal) as service:
            stream = service.open_stream(StreamConfig(qp=10))
            self._run_segments(service, stream, frames, 0, 2)
            while service.stats()["streams"][stream]["completed"] < 2:
                service.collect(stream, timeout=5.0)
        with CodecService(workers=1, journal_dir=journal) as revived:
            assert revived.stats()["totals"]["streams_restored"] == 1
            self._run_segments(revived, stream, frames, 2, 4)
            summary = revived.close_stream(stream)
        assert summary.payload == reference

    def test_duplicate_resubmits_are_deduped_not_reencoded(self, tmp_path):
        frames = _frames(8)
        journal = tmp_path / "journal"
        with CodecService(workers=0, journal_dir=journal) as service:
            stream = service.open_stream(StreamConfig(qp=10))
            self._run_segments(service, stream, frames, 0, 2)
            originals = {r.segment: r for r in service.collect(stream)}
        with CodecService(workers=0, journal_dir=journal) as revived:
            # the client is unsure which submits landed: resubmit all
            self._run_segments(revived, stream, frames, 0, 4)
            redelivered = {r.segment: r
                           for r in revived.collect(stream)}
            stats = revived.stats()["streams"][stream]
            # only the two new segments were encoded this incarnation
            assert stats["submitted"] == 4
            summary = revived.close_stream(stream)
        assert set(redelivered) == {0, 1, 2, 3}
        for index in (0, 1):
            assert redelivered[index].bits == originals[index].bits
        assert summary.payload == _one_shot(frames, qp=10)
        # worker-side counters never saw the duplicates again
        assert summary.segments == 4

    def test_second_duplicate_of_one_seq_is_acked_once(self, tmp_path):
        frames = _frames(4)
        journal = tmp_path / "journal"
        with CodecService(workers=0, journal_dir=journal) as service:
            stream = service.open_stream(StreamConfig(qp=10))
            self._run_segments(service, stream, frames, 0, 2)
            service.collect(stream)
        with CodecService(workers=0, journal_dir=journal) as revived:
            assert revived.submit_segment(stream, frames[0:2], seq=0) == 0
            assert revived.submit_segment(stream, frames[0:2], seq=0) == 0
            assert len(revived.collect(stream)) == 1

    def test_seq_ahead_of_the_stream_is_a_protocol_error(self, tmp_path):
        with CodecService(workers=0,
                          journal_dir=tmp_path / "j") as service:
            stream = service.open_stream(StreamConfig(qp=10))
            with pytest.raises(ServiceProtocolError,
                               match="skipped a segment"):
                service.submit_segment(stream, _frames(2), seq=5)

    def test_closed_stream_is_not_resurrected(self, tmp_path):
        journal = tmp_path / "journal"
        with CodecService(workers=0, journal_dir=journal) as service:
            stream = service.open_stream(StreamConfig(qp=10))
            service.submit_segment(stream, _frames(2), seq=0)
            service.close_stream(stream)
        with CodecService(workers=0, journal_dir=journal) as revived:
            assert revived.stats()["totals"]["streams_restored"] == 0
            # the retired id is never reused for a fresh stream
            assert revived.open_stream(StreamConfig(qp=10)) != stream

    def test_aborted_stream_is_not_resurrected(self, tmp_path):
        journal = tmp_path / "journal"
        with CodecService(workers=0, journal_dir=journal) as service:
            stream = service.open_stream(StreamConfig(qp=10))
            service.abort_stream(stream)
        with CodecService(workers=0, journal_dir=journal) as revived:
            assert revived.stats()["totals"]["streams_restored"] == 0

    def test_unjournaled_service_keeps_old_semantics(self, tmp_path):
        frames = _frames(4)
        with CodecService(workers=0) as service:
            stream = service.open_stream(StreamConfig(qp=10))
            assert service.submit_segment(stream, frames[0:2]) == 0
            assert service.stats()["totals"]["streams_restored"] == 0
            assert not service.stats()["totals"]["journaled"]


# -- coordkill chaos: SIGKILLed sweep resumes byte-identical ------------------

REPO = pathlib.Path(__file__).resolve().parent.parent


def _sweep_cli(tmp_path, sweep_dir, *extra):
    env = dict(os.environ,
               PYTHONPATH=str(REPO / "src"), PYTHONHASHSEED="0")
    return subprocess.run(
        [sys.executable, "-m", "repro", "sweep", "--frames", "3",
         "--only", "figure1", "--only", "figure3", "--quiet",
         "--sweep-dir", str(sweep_dir), *extra],
        cwd=tmp_path, env=env, capture_output=True, text=True,
        timeout=300)


@pytest.mark.slow
class TestCoordkillResumeCLI:
    def test_killed_journaled_sweep_resumes_byte_identical(self, tmp_path):
        serial = _sweep_cli(tmp_path, tmp_path / "serial")
        assert serial.returncode == 0, serial.stderr
        journal = tmp_path / "journal"
        killed = _sweep_cli(
            tmp_path, tmp_path / "dist",
            "--distributed", "127.0.0.1:0", "--spawn-workers", "1",
            "--journal", str(journal),
            "--inject-faults", "coordkill:figure1:times=1")
        assert killed.returncode == faults.KILL_EXIT_STATUS, killed.stderr
        assert segment_paths(journal), "the kill left no journal behind"
        # lose the cache and the checkpoint (scratch disk gone): the
        # journal must now be the only durable record of the commit
        for store in ("cache", "checkpoint"):
            shutil.rmtree(tmp_path / "dist" / store, ignore_errors=True)
        resumed = _sweep_cli(
            tmp_path, tmp_path / "dist",
            "--distributed", "127.0.0.1:0", "--spawn-workers", "1",
            "--resume-journal", str(journal))
        assert resumed.returncode == 0, resumed.stderr
        report = tmp_path / "dist" / "sweep_report.json"
        assert report.read_bytes() == \
            (tmp_path / "serial" / "sweep_report.json").read_bytes()
        recovered = [
            json.loads(line)
            for log in (tmp_path / "dist" / "runs").glob("*.jsonl")
            for line in log.read_text().splitlines() if line.strip()
            if '"journal_recovered"' in line]
        assert recovered and recovered[0]["restored"] >= 1

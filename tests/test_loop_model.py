"""The loop-level RFU kernel model: geometry, latency, timing, function."""

import numpy as np
import pytest

from repro.codec.sad import getsad
from repro.errors import RfuError
from repro.memory import LineBufferA, LineBufferB, MemorySystem, MemoryTimings
from repro.rfu.loop_model import (
    Bandwidth,
    InterpMode,
    LoopKernelModel,
    LoopKernelParams,
    predictor_geometry,
)
from repro.rfu.prefetch_ops import MacroblockPrefetchEngine


class TestGeometry:
    def test_figure2_case(self):
        # alignment 3, diagonal: 5 words x 17 rows
        assert predictor_geometry(3, InterpMode.HV) == (17, 5)

    def test_aligned_full_pel_is_minimal(self):
        assert predictor_geometry(0, InterpMode.FULL) == (16, 4)

    def test_horizontal_needs_17th_pixel(self):
        assert predictor_geometry(0, InterpMode.H) == (16, 5)

    def test_vertical_needs_17th_row(self):
        assert predictor_geometry(0, InterpMode.V) == (17, 4)

    def test_all_alignments_fit_five_words(self):
        for alignment in range(4):
            for mode in InterpMode:
                rows, words = predictor_geometry(alignment, mode)
                assert 4 <= words <= 5
                assert rows in (16, 17)

    def test_bad_alignment_rejected(self):
        with pytest.raises(RfuError):
            predictor_geometry(4, InterpMode.FULL)


class TestBandwidth:
    def test_access_widths(self):
        assert Bandwidth.B1X32.bytes_per_access == 4
        assert Bandwidth.B1X64.bytes_per_access == 8
        assert Bandwidth.B2X64.accesses_per_cycle == 2


class TestStaticLatency:
    def _model(self, bandwidth, beta=1.0, lbb=False):
        return LoopKernelModel(LoopKernelParams(bandwidth, beta,
                                                use_line_buffer_b=lbb))

    def test_ii_follows_bandwidth(self):
        assert self._model(Bandwidth.B1X32).initiation_interval(3, InterpMode.HV) == 5
        assert self._model(Bandwidth.B1X64).initiation_interval(3, InterpMode.HV) == 3
        assert self._model(Bandwidth.B2X64).initiation_interval(3, InterpMode.HV) == 2

    def test_line_buffer_b_collapses_ii_to_one(self):
        model = self._model(Bandwidth.B1X32, lbb=True)
        for alignment in range(4):
            assert model.initiation_interval(alignment, InterpMode.HV) == 1

    def test_latency_monotone_in_bandwidth(self):
        latencies = [self._model(bw).static_latency(3, InterpMode.HV).total
                     for bw in (Bandwidth.B1X32, Bandwidth.B1X64,
                                Bandwidth.B2X64)]
        assert latencies[0] > latencies[1] > latencies[2]

    def test_technology_scaling_adds_fixed_12_cycles(self):
        for bandwidth in Bandwidth:
            fast = self._model(bandwidth, 1.0).worst_case_latency()
            slow = self._model(bandwidth, 5.0).worst_case_latency()
            assert slow - fast == 12  # the paper's fixed latency growth

    def test_relative_increase_grows_with_bandwidth(self):
        increases = []
        for bandwidth in (Bandwidth.B1X32, Bandwidth.B1X64, Bandwidth.B2X64):
            fast = self._model(bandwidth, 1.0).worst_case_latency()
            slow = self._model(bandwidth, 5.0).worst_case_latency()
            increases.append((slow - fast) / fast)
        assert increases[0] < increases[1] < increases[2]

    def test_worst_case_is_diagonal_alignment_3(self):
        model = self._model(Bandwidth.B1X32)
        worst = model.worst_case_latency()
        for alignment in range(4):
            for mode in InterpMode:
                assert model.static_latency(alignment, mode).total <= worst


class TestTraceTiming:
    def _environment(self, lbb=False):
        memory = MemorySystem(MemoryTimings(prefetch_entries=64,
                                            bus_latency=30,
                                            bus_service_interval=4))
        buffer_a = LineBufferA()
        buffer_b = LineBufferB(memory) if lbb else None
        engine = MacroblockPrefetchEngine(memory, buffer_a, buffer_b)
        params = LoopKernelParams(Bandwidth.B1X32, use_line_buffer_b=lbb)
        model = LoopKernelModel(params, memory, buffer_a, buffer_b, engine)
        return memory, buffer_a, engine, model

    def test_invocation_total_includes_stalls(self):
        memory, buffer_a, engine, model = self._environment()
        engine.fill_line_buffer_a(0x10000, 176, 0)
        cycles, stalls = model.run_invocation(0x20003, 176, 3,
                                              InterpMode.HV, cycle=0)
        static = model.static_latency(3, InterpMode.HV).total
        assert cycles == static + stalls
        assert stalls > 0  # cold memory

    def test_warm_rerun_has_no_stalls(self):
        memory, buffer_a, engine, model = self._environment()
        engine.fill_line_buffer_a(0x10000, 176, 0)
        model.run_invocation(0x20003, 176, 3, InterpMode.HV, cycle=0)
        cycles, stalls = model.run_invocation(0x20003, 176, 3,
                                              InterpMode.HV, cycle=10000)
        assert stalls == 0
        assert cycles == model.static_latency(3, InterpMode.HV).total

    def test_requires_memory_system(self):
        model = LoopKernelModel(LoopKernelParams(Bandwidth.B1X32))
        with pytest.raises(RfuError):
            model.run_invocation(0, 176, 0, InterpMode.FULL, 0)


class TestFunctionalSad:
    def test_matches_golden_for_every_mode(self, random_plane):
        memory = MemorySystem()
        base = 0x30000
        stride = random_plane.shape[1]
        memory.main.write_block(base, random_plane)
        model = LoopKernelModel(LoopKernelParams(Bandwidth.B1X32),
                                memory=memory)
        mb_x, mb_y = 16, 16
        for mode in InterpMode:
            for pred_x, pred_y in [(4, 7), (9, 3), (21, 30)]:
                expected = getsad(
                    random_plane, random_plane, mb_x, mb_y, pred_x, pred_y,
                    1 if mode.needs_extra_column else 0,
                    1 if mode.needs_extra_row else 0)
                measured = model.compute_sad(
                    base + mb_y * stride + mb_x,
                    base + pred_y * stride + pred_x, stride, mode)
                assert measured == expected, mode

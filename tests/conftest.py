"""Shared fixtures: small, session-cached workloads so the suite stays fast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec.sequence import SyntheticSequenceConfig, synthetic_sequence
from repro.core.exploration import ExplorationConfig
from repro.experiments.workload import ExperimentContext
from repro.memory import MemorySystem, MemoryTimings


@pytest.fixture(scope="session")
def tiny_sequence():
    """Three synthetic QCIF frames (deterministic)."""
    return synthetic_sequence(SyntheticSequenceConfig(frames=3))


@pytest.fixture(scope="session")
def small_context():
    """One shared 3-frame experiment context for every experiment test."""
    return ExperimentContext(ExplorationConfig(frames=3))


@pytest.fixture()
def memory():
    """A fresh memory system with default (paper) timings."""
    return MemorySystem(MemoryTimings())


@pytest.fixture(scope="session")
def random_plane():
    """A deterministic random 64x64 uint8 plane."""
    rng = np.random.default_rng(7)
    return rng.integers(0, 256, (64, 64), dtype=np.uint8)

"""The fault-tolerant sweep layer, driven by deterministic fault injection.

Every recovery path gets a test with a seeded :mod:`repro.faults` plan:

* worker death mid-cell -> pool respawn, requeue, **byte-identical** report;
* repeated pool deaths -> degradation to serial execution, which always
  terminates (injected kills are honoured only inside pool workers);
* per-cell wall-clock timeouts (SIGALRM deadlines) and bounded
  retry-with-exponential-backoff, including the exact backoff schedule
  (asserted through the policy's injectable sleep);
* corrupt cache entries -> quarantine + ``cache_corrupt`` event, never a
  silent miss or a silent re-hit;
* truncated run logs -> tolerated final line, strict mid-stream corruption;
* the crash-recovery checkpoint -> resume without the memoisation cache;
* the sampled ``--verify-replay`` differential guard -> injected columnar
  divergences are detected, diagnosed field-by-field, and fall back to
  the legacy result.
"""

import json

import pytest

from repro import faults
from repro.core.exploration import Exploration, ExplorationConfig
from repro.core.scenarios import instruction_scenario, loop_scenario
from repro.core.timing import (
    TraceReplayer,
    replay_verification,
    set_replay_verification,
)
from repro.errors import (
    CacheCorrupt,
    CellTimeout,
    ExperimentError,
    FaultSpecError,
    ReplayDivergence,
    ReproError,
    ResilienceError,
    RunLogCorrupt,
    SweepWorkerDied,
    TransientCellError,
    event_code,
)
from repro.experiments import runner as runner_mod
from repro.rfu.loop_model import Bandwidth
from repro.sweep import (
    ResiliencePolicy,
    SweepCache,
    SweepConfig,
    read_events,
    run_cells,
    run_sweep,
)

FRAMES = 3

#: small deterministic cell subset shared by the chaos sweeps
CELLS = ["table1", "table2", "figure1"]


@pytest.fixture(autouse=True)
def _clean_fault_state():
    """No fault plan or armed verification may leak between tests."""
    faults.clear()
    set_replay_verification(0.0)
    yield
    faults.clear()
    set_replay_verification(0.0)


def _collector():
    events = []

    def emit(kind, **fields):
        events.append({"event": kind, **fields})

    return events, emit


def _sweep(root, **overrides):
    defaults = dict(frames=FRAMES, root=root, use_cache=False, only=CELLS)
    defaults.update(overrides)
    return run_sweep(SweepConfig(**defaults))


class TestFaultSpec:
    def test_parse_round_trip(self):
        plan = faults.parse_spec(
            "seed=7;kill:table1;raise:*:times=3;latency:figure2:delay=0.5")
        assert plan.seed == 7
        kinds = [(c.kind, c.target) for c in plan.clauses]
        assert kinds == [("kill", "table1"), ("raise", "*"),
                         ("latency", "figure2")]
        assert plan.clauses[1].times == 3
        assert plan.clauses[2].delay_s == 0.5

    def test_comma_and_semicolon_are_interchangeable(self):
        plan = faults.parse_spec("kill:a,raise:b")
        assert [c.kind for c in plan.clauses] == ["kill", "raise"]

    def test_times_budget_is_per_attempt(self):
        plan = faults.parse_spec("raise:cell:times=2")
        assert plan.decide("raise", "cell", 0) is not None
        assert plan.decide("raise", "cell", 1) is not None
        assert plan.decide("raise", "cell", 2) is None
        # stateless: the same attempt decides the same way forever
        assert plan.decide("raise", "cell", 0) is not None

    def test_probability_draws_are_deterministic(self):
        spec = "seed=42;raise:cell:p=0.5"
        first = [faults.parse_spec(spec).decide("raise", "cell", i)
                 is not None for i in range(32)]
        second = [faults.parse_spec(spec).decide("raise", "cell", i)
                  is not None for i in range(32)]
        assert first == second
        assert any(first) and not all(first)  # an actual mixture

    def test_seed_changes_probability_draws(self):
        draws = {seed: tuple(
            faults.parse_spec(f"seed={seed};raise:cell:p=0.5")
            .decide("raise", "cell", i) is not None for i in range(32))
            for seed in (1, 2)}
        assert draws[1] != draws[2]

    def test_consume_counts_parent_side_fires(self):
        plan = faults.parse_spec("corrupt:entry:times=2")
        assert plan.consume("corrupt", "entry") is not None
        assert plan.consume("corrupt", "entry") is not None
        assert plan.consume("corrupt", "entry") is None

    def test_wildcard_target(self):
        plan = faults.parse_spec("kill:*")
        assert plan.decide("kill", "anything", 0) is not None

    @pytest.mark.parametrize("bad", [
        "", "  ;  ", "kill", "kill:", "frob:cell", "seed=x;kill:cell",
        "kill:cell:times=x", "raise:cell:p=1.5", "latency:cell:wat=1",
    ])
    def test_bad_specs_raise(self, bad):
        with pytest.raises(FaultSpecError):
            faults.parse_spec(bad)

    def test_install_mirrors_to_environment(self):
        faults.install("kill:cell")
        import os
        assert os.environ[faults.ENV_VAR] == "kill:cell"
        faults.clear()
        assert faults.ENV_VAR not in os.environ
        assert faults.active() is None

    def test_install_from_environment(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "raise:cell")
        plan = faults.install_from_environment()
        assert plan is not None
        assert plan.decide("raise", "cell", 0) is not None

    def test_fire_points_are_noops_without_a_plan(self, tmp_path):
        faults.fire_worker_faults("cell", 0)  # must not raise
        path = tmp_path / "f"
        path.write_text("data")
        assert not faults.maybe_corrupt_file(path, "cell")
        assert not faults.maybe_truncate_file(path)
        assert faults.replay_perturbation("orig") == 0
        assert path.read_text() == "data"

    def test_raise_clause_raises_transient(self):
        faults.install("raise:cell")
        with pytest.raises(TransientCellError):
            faults.fire_worker_faults("cell", 0)

    def test_kill_is_not_honoured_in_process(self):
        # outside a pool worker a kill clause is inert, so the degraded
        # serial path can never be killed by its own injector
        faults.install("kill:cell")
        faults.fire_worker_faults("cell", 0)  # still alive


class TestErrorTaxonomy:
    RESILIENCE_TYPES = [SweepWorkerDied, CellTimeout, TransientCellError,
                        CacheCorrupt, RunLogCorrupt, ReplayDivergence]

    def test_codes_are_unique_and_stable(self):
        codes = [t.code for t in self.RESILIENCE_TYPES]
        assert len(set(codes)) == len(codes)
        assert all(code.startswith("REPRO-RES-") for code in codes)
        assert CellTimeout.code == "REPRO-RES-TIMEOUT"
        assert SweepWorkerDied.code == "REPRO-RES-WORKER-DIED"

    def test_resilience_errors_are_catchable_at_both_bases(self):
        for exc_type in self.RESILIENCE_TYPES:
            assert issubclass(exc_type, ResilienceError)
            assert issubclass(exc_type, ReproError)

    def test_describe_carries_code_and_hint(self):
        described = CellTimeout("cell 'x' blew its budget").describe()
        assert described.startswith(f"[{CellTimeout.code}]")
        assert "cell 'x' blew its budget" in described
        assert "hint:" in described

    def test_str_stays_plain_for_matching(self):
        assert str(CacheCorrupt("plain message")) == "plain message"

    def test_event_code_helper(self):
        assert event_code(SweepWorkerDied) == SweepWorkerDied.code
        assert event_code(ValueError) == ReproError.code
        assert event_code(ValueError, default="X") == "X"


class TestRetryAndTimeout:
    """Serial-path retry semantics (the pool path shares the code)."""

    def test_transient_failure_retries_with_backoff_schedule(self):
        faults.install("raise:figure1:times=2")
        sleeps = []
        policy = ResiliencePolicy(max_retries=3, backoff_base_s=0.01,
                                  sleep=sleeps.append)
        events, emit = _collector()
        results = run_cells(["figure1"], frames=FRAMES, policy=policy,
                            on_event=emit)
        assert results[0].ok and results[0].attempts == 3
        retries = [e for e in events if e["event"] == "cell_retry"]
        assert [r["reason"] for r in retries] == ["transient", "transient"]
        assert [r["code"] for r in retries] == [TransientCellError.code] * 2
        assert sleeps == [0.01, 0.02]  # exponential: base, 2*base

    def test_backoff_is_capped(self):
        policy = ResiliencePolicy(backoff_base_s=1.0, backoff_max_s=1.5)
        assert policy.backoff_s(1) == 1.0
        assert policy.backoff_s(2) == 1.5
        assert policy.backoff_s(10) == 1.5

    def test_exhausted_retries_surface_the_transient_error(self):
        faults.install("raise:figure1:times=10")
        policy = ResiliencePolicy(max_retries=2, backoff_base_s=0.001,
                                  sleep=lambda s: None)
        events, emit = _collector()
        results = run_cells(["figure1"], frames=FRAMES, policy=policy,
                            on_event=emit)
        result = results[0]
        assert not result.ok and result.transient
        assert result.attempts == 3  # 1 try + 2 retries
        assert result.error_code == TransientCellError.code
        assert "injected transient fault" in result.error

    def test_timeout_fires_and_the_retry_succeeds(self):
        faults.install("latency:figure1:delay=5")
        policy = ResiliencePolicy(cell_timeout_s=0.2, max_retries=2,
                                  backoff_base_s=0.001,
                                  sleep=lambda s: None)
        events, emit = _collector()
        results = run_cells(["figure1"], frames=FRAMES, policy=policy,
                            on_event=emit)
        assert results[0].ok and results[0].attempts == 2
        assert [e["event"] for e in events] == ["cell_timeout", "cell_retry"]
        assert events[0]["code"] == CellTimeout.code
        assert events[0]["timeout_s"] == 0.2
        assert events[1]["reason"] == "timeout"

    def test_persistent_timeout_exhausts_and_reports(self):
        faults.install("latency:figure1:delay=5:times=10")
        policy = ResiliencePolicy(cell_timeout_s=0.1, max_retries=1,
                                  backoff_base_s=0.001,
                                  sleep=lambda s: None)
        results = run_cells(["figure1"], frames=FRAMES, policy=policy)
        result = results[0]
        assert not result.ok and result.timed_out
        assert result.error_code == CellTimeout.code
        assert result.attempts == 2

    def test_deterministic_failures_fail_fast(self, monkeypatch):
        def explode():
            raise RuntimeError("deterministic failure")

        monkeypatch.setitem(runner_mod.RUNNERS, "figure1",
                            ("figure", explode))
        events, emit = _collector()
        results = run_cells(["figure1"], frames=FRAMES,
                            policy=ResiliencePolicy(max_retries=3),
                            on_event=emit)
        assert not results[0].ok and results[0].attempts == 1
        assert not [e for e in events if e["event"] == "cell_retry"]
        assert "deterministic failure" in results[0].error

    def test_injected_kill_is_inert_in_serial_mode(self):
        faults.install("kill:figure1:times=99")
        results = run_cells(["figure1"], frames=FRAMES)
        assert results[0].ok


class TestChaosSweeps:
    """Whole-sweep recovery: the report must never depend on the faults."""

    @pytest.fixture(scope="class")
    def clean(self, tmp_path_factory):
        faults.clear()
        return _sweep(tmp_path_factory.mktemp("clean"), jobs=1)

    def test_worker_kill_respawns_pool_and_report_is_identical(
            self, tmp_path, clean):
        result = _sweep(tmp_path / "sweep", jobs=2,
                        fault_spec="kill:table1")
        assert not result.failures
        assert result.report == clean.report
        respawns = read_events(result.run_log, "pool_respawn")
        assert len(respawns) == 1
        assert respawns[0]["code"] == SweepWorkerDied.code
        assert "table1" in respawns[0]["requeued"]
        # the requeued attempts are visible in the summary
        assert result.sweep_report["totals"]["retries"] >= 1

    def test_mixed_faults_still_converge_byte_identical(self, tmp_path,
                                                        clean):
        result = _sweep(tmp_path / "sweep", jobs=2, max_retries=3,
                        fault_spec="kill:table2;raise:table1:times=1")
        assert not result.failures
        assert result.report == clean.report
        assert read_events(result.run_log, "pool_respawn")

    def test_repeated_deaths_degrade_to_serial(self, tmp_path, clean):
        result = _sweep(tmp_path / "sweep", jobs=2, max_pool_deaths=1,
                        fault_spec="kill:*:times=99")
        assert not result.failures
        assert result.report == clean.report
        degraded = read_events(result.run_log, "degraded_serial")
        assert len(degraded) == 1
        assert degraded[0]["pool_deaths"] == 1
        assert degraded[0]["code"] == SweepWorkerDied.code

    def test_sweep_start_records_the_resilience_config(self, tmp_path):
        result = _sweep(tmp_path / "sweep", cell_timeout_s=30.0,
                        max_retries=5, only=["figure1"])
        start = read_events(result.run_log, "sweep_start")[0]
        assert start["cell_timeout_s"] == 30.0
        assert start["max_retries"] == 5
        assert start["faults"] is False


class TestCacheIntegrity:
    def test_checksum_mismatch_is_quarantined_not_silent(self, tmp_path):
        reports = []
        cache = SweepCache(tmp_path / "cache", on_corrupt=reports.append)
        cache.put("k", {"rendered": "x"})
        path = cache.entry_path("k")
        envelope = json.loads(path.read_text())
        envelope["payload"]["rendered"] = "tampered"
        path.write_text(json.dumps(envelope))
        assert cache.get("k") is None
        assert len(reports) == 1
        assert reports[0]["code"] == CacheCorrupt.code
        assert "checksum mismatch" in reports[0]["reason"]
        # renamed into quarantine/: the corrupt bytes cannot be re-hit
        assert not path.exists()
        assert list(cache.quarantine_dir.glob("*.corrupt"))
        assert cache.get("k") is None

    def test_undecodable_entry_is_quarantined(self, tmp_path):
        reports = []
        cache = SweepCache(tmp_path / "cache", on_corrupt=reports.append)
        cache.put("k", {"rendered": "x"})
        cache.entry_path("k").write_text("{truncated")
        assert cache.get("k") is None
        assert len(reports) == 1

    def test_pre_envelope_format_is_quarantined(self, tmp_path):
        reports = []
        cache = SweepCache(tmp_path / "cache", on_corrupt=reports.append)
        cache.root.mkdir(parents=True)
        cache.entry_path("k").write_text('{"rendered": "old-format"}')
        assert cache.get("k") is None
        assert "format" in reports[0]["reason"]

    def test_without_callback_corruption_warns_on_stderr(self, tmp_path,
                                                         capsys):
        cache = SweepCache(tmp_path / "cache")
        cache.put("k", {"rendered": "x"})
        cache.entry_path("k").write_text("garbage")
        assert cache.get("k") is None
        assert CacheCorrupt.code in capsys.readouterr().err

    def test_injected_corruption_recomputes_and_logs(self, tmp_path):
        root = tmp_path / "sweep"
        first = run_sweep(SweepConfig(frames=FRAMES, root=root,
                                      only=["figure1"],
                                      fault_spec="corrupt:figure1"))
        faults.clear()
        second = run_sweep(SweepConfig(frames=FRAMES, root=root,
                                       only=["figure1"]))
        assert second.report == first.report
        corrupt = read_events(second.run_log, "cache_corrupt")
        assert len(corrupt) == 1
        assert corrupt[0]["code"] == CacheCorrupt.code
        hit_names = {c.name for c in second.cells if c.cached}
        assert "workload" in hit_names and "figure1" not in hit_names
        assert list((root / "cache" / "quarantine").glob("*.corrupt"))
        # third run re-hits everything: the recomputed entry is healthy
        third = run_sweep(SweepConfig(frames=FRAMES, root=root,
                                      only=["figure1"]))
        assert {c.name for c in third.cells if c.cached} \
            == {"workload", "figure1"}


class TestRunLogTolerance:
    def test_truncated_final_line_is_always_tolerated(self, tmp_path):
        log = tmp_path / "log.jsonl"
        log.write_text('{"event": "a"}\n{"event": "b')
        assert [e["event"] for e in read_events(log)] == ["a"]

    def test_mid_stream_corruption_raises_with_code(self, tmp_path):
        log = tmp_path / "log.jsonl"
        log.write_text('{"event": "a"}\nGARBAGE\n{"event": "b"}\n')
        with pytest.raises(RunLogCorrupt, match="line 2"):
            read_events(log)
        assert [e["event"] for e in read_events(log, strict=False)] \
            == ["a", "b"]

    def test_injected_truncation_shears_the_final_event(self, tmp_path):
        result = _sweep(tmp_path / "sweep", only=["figure1"],
                        fault_spec="truncate:runlog")
        events = read_events(result.run_log)  # must not raise
        kinds = [e["event"] for e in events]
        assert kinds[0] == "sweep_start"
        assert "sweep_finish" not in kinds  # the sheared final line


class TestCheckpointResume:
    def test_resume_without_the_memoisation_cache(self, tmp_path,
                                                  monkeypatch):
        def explode(context=None):
            raise RuntimeError("first run dies here")

        monkeypatch.setitem(runner_mod.RUNNERS, "table2",
                            ("table", explode))
        root = tmp_path / "sweep"
        first = _sweep(root, only=["table1", "table2"])
        assert [c.name for c in first.failures] == ["table2"]
        # the failed run left its completed cells in the crash journal
        assert list((root / "checkpoint").glob("*.json"))
        monkeypatch.undo()
        second = _sweep(root, only=["table1", "table2"])
        assert not second.failures
        restored = read_events(second.run_log, "checkpoint_restore")
        assert {e["cell"] for e in restored} == {"workload", "table1"}
        # a fully clean finish clears the journal...
        assert not list((root / "checkpoint").glob("*.json"))
        # ...so the next cacheless run recomputes from scratch
        third = _sweep(root, only=["table1", "table2"])
        assert not read_events(third.run_log, "checkpoint_restore")
        assert third.report == second.report

    def test_checkpoint_promotes_into_an_enabled_cache(self, tmp_path,
                                                       monkeypatch):
        def explode(context=None):
            raise RuntimeError("boom")

        monkeypatch.setitem(runner_mod.RUNNERS, "table2",
                            ("table", explode))
        root = tmp_path / "sweep"
        # the failing run writes only the checkpoint (cache disabled)...
        _sweep(root, only=["table1", "table2"])
        monkeypatch.undo()
        # ...the cache-enabled rerun restores from it and promotes the
        # restored cells into the cache
        second = run_sweep(SweepConfig(frames=FRAMES, root=root,
                                       only=["table1", "table2"]))
        assert not second.failures
        assert {e["cell"] for e in
                read_events(second.run_log, "checkpoint_restore")} \
            == {"workload", "table1"}
        third = run_sweep(SweepConfig(frames=FRAMES, root=root,
                                      only=["table1", "table2"]))
        assert all(c.cached for c in third.cells)


class TestVerifyReplay:
    @pytest.fixture(scope="class")
    def exploration(self):
        exploration = Exploration(ExplorationConfig(frames=FRAMES))
        exploration.replayer  # build once for the class
        return exploration

    def test_pct_validation(self):
        with pytest.raises(ExperimentError, match="percentage"):
            set_replay_verification(150)
        set_replay_verification(25, seed=7)
        assert replay_verification()["pct"] == 25.0
        assert replay_verification()["seed"] == 7

    def test_full_verification_agrees_with_the_legacy_walk(self,
                                                           exploration):
        replayer = exploration.replayer
        set_replay_verification(100)
        before = replayer.verified_replays
        replayer.replay(instruction_scenario("orig"))
        replayer.replay(loop_scenario(Bandwidth.B1X32))
        assert replayer.verified_replays == before + 2
        assert not replayer.divergences

    def test_disarmed_guard_verifies_nothing(self, exploration):
        replayer = exploration.replayer
        before = replayer.verified_replays
        replayer.replay(instruction_scenario("a2"))
        assert replayer.verified_replays == before

    def test_sampling_is_deterministic_per_scenario(self, exploration):
        replayer = exploration.replayer
        set_replay_verification(50, seed=11)
        decisions = [replayer._should_verify(name)
                     for name in ("orig", "a2", "a4", "b2", "c4")]
        assert decisions == [replayer._should_verify(name)
                             for name in ("orig", "a2", "a4", "b2", "c4")]

    def test_injected_divergence_is_detected_and_falls_back(self,
                                                            exploration,
                                                            capsys):
        replayer = exploration.replayer
        scenario = instruction_scenario("a2")
        clean = replayer.replay(scenario)
        set_replay_verification(100)
        faults.install("diverge:a2")
        known = len(replayer.divergences)
        result = replayer.replay(scenario)
        record = replayer.divergences[known]
        assert record["scenario"] == "a2"
        assert record["code"] == ReplayDivergence.code
        diff = record["fields"]["static_cycles"]
        assert diff["columnar"] == diff["legacy"] + 1  # the perturbation
        # the legacy reference wins: the caller sees the true value
        assert result == clean
        assert ReplayDivergence.code in capsys.readouterr().err

    def test_strict_mode_raises_on_divergence(self, exploration):
        replayer = exploration.replayer
        set_replay_verification(100, strict=True)
        faults.install("diverge:orig")
        with pytest.raises(ReplayDivergence, match="orig"):
            replayer.replay(instruction_scenario("orig"))

    def test_reference_replay_is_independent_of_the_columnar_path(
            self, exploration):
        # a legacy-engine replayer produces the same numbers the guard's
        # reference recomputation does, for instruction and loop kinds
        columnar = exploration.replayer
        legacy = TraceReplayer(exploration.encoder_report.trace,
                               engine="legacy")
        for scenario in (instruction_scenario("a2"),
                         loop_scenario(Bandwidth.B1X32)):
            assert columnar._reference_replay(scenario) \
                == legacy.replay(scenario)

    def test_sweep_surfaces_divergences_in_log_and_breakdown(self,
                                                             tmp_path):
        # a fresh workload seed: the process-global context for the usual
        # seed is already fully memoised by earlier tests, and memoised
        # scenarios never replay (so never verify)
        result = run_sweep(SweepConfig(
            frames=FRAMES, seed=3, root=tmp_path / "sweep",
            use_cache=False, only=["table1"], verify_replay_pct=100.0,
            fault_spec="diverge:orig"))
        assert not result.failures
        breakdown = read_events(result.run_log, "replay_breakdown")[0]
        assert breakdown["verify"]["checked"] > 0
        assert breakdown["verify"]["divergences"] >= 1
        divergence = read_events(result.run_log, "replay_divergence")[0]
        assert divergence["scenario"] == "orig"
        assert divergence["code"] == ReplayDivergence.code
        assert "static_cycles" in divergence["fields"]

    def test_clean_sweep_verifies_with_zero_divergences(self, tmp_path):
        result = run_sweep(SweepConfig(
            frames=FRAMES, seed=4, root=tmp_path / "sweep",
            use_cache=False, only=["table1"], verify_replay_pct=100.0))
        assert not result.failures
        breakdown = read_events(result.run_log, "replay_breakdown")[0]
        assert breakdown["verify"]["checked"] > 0
        assert breakdown["verify"]["divergences"] == 0
        assert not read_events(result.run_log, "replay_divergence")

"""Property tests for the bitstream fuzzing harness.

The contract under test, for *any* corruption of a valid stream (and for
arbitrary garbage): the strict parser either succeeds or raises a
structured :class:`repro.errors.DecodeError` — never ``IndexError``,
``ValueError`` or a hang — and the robust path never raises at all,
always returning geometrically valid concealed frames.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.__main__ import main
from repro.codec import (
    EncoderConfig,
    Mpeg4Encoder,
    deserialize,
    robust_decode,
    serialize,
)
from repro.codec.motion import ThreeStepSearch
from repro.codec.sequence import SyntheticSequenceConfig, synthetic_sequence
from repro.errors import DecodeError, FaultSpecError
from repro.faults import BITSTREAM_KINDS, corrupt_bitstream


@pytest.fixture(scope="module")
def payloads():
    """One small encode, serialized in both wire layouts."""
    frames = synthetic_sequence(
        SyntheticSequenceConfig(width=48, height=48, frames=3))
    report = Mpeg4Encoder(EncoderConfig(strategy=ThreeStepSearch(2),
                                        resync_every=1)).encode(frames)
    return {"resilient": report.serialize(),
            "legacy": serialize(report.coded, resync_every=0)}


def strict_is_structured(payload: bytes) -> bool:
    """Strict-parse a payload; DecodeError is the only legal failure.

    Anything unstructured propagates and fails the calling test."""
    try:
        deserialize(payload)
        return True
    except DecodeError:
        return False


def assert_robust_contract(payload: bytes):
    """The robust path never raises and returns valid geometry."""
    frames, health = robust_decode(payload)
    assert health.bits_total == 8 * len(payload)
    for frame in frames:
        assert frame.width % 16 == 0 and frame.height % 16 == 0
    if frames:
        mb_total = len(frames) * frames[0].mb_cols * frames[0].mb_rows
        assert health.mbs_decoded + health.mbs_concealed == mb_total
    return frames, health


class TestGarbageInput:
    @given(st.binary(min_size=0, max_size=256))
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_garbage_never_unstructured(self, garbage):
        strict_is_structured(garbage)
        assert_robust_contract(garbage)

    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_garbage_behind_magic_never_unstructured(self, garbage):
        payload = b"\xa5\x4d" + garbage
        strict_is_structured(payload)
        assert_robust_contract(payload)


class TestTruncation:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_any_truncation_is_structured(self, payloads, data):
        layout = data.draw(st.sampled_from(["resilient", "legacy"]))
        payload = payloads[layout]
        cut = data.draw(st.integers(0, len(payload) - 1))
        truncated = payload[:cut]
        # a strict prefix always raises: every byte carries payload bits
        assert not strict_is_structured(truncated)
        frames, health = assert_robust_contract(truncated)
        if frames:
            # header survived: full frame count, the tail concealed
            assert len(frames) == 3
            assert health.mbs_concealed > 0 or cut == len(payload)


class TestByteCorruption:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_single_byte_xor_resilient_always_detected(self, payloads,
                                                       data):
        """A one-byte error is a burst of <= 8 bits; CRC-8 headers and
        CRC-16 payloads detect every such burst, so the strict parser
        must reject any single-byte corruption of a resilient stream."""
        payload = payloads["resilient"]
        offset = data.draw(st.integers(0, len(payload) - 1))
        mask = data.draw(st.integers(1, 255))
        corrupted = payload[:offset] \
            + bytes([payload[offset] ^ mask]) + payload[offset + 1:]
        assert not strict_is_structured(corrupted)
        assert_robust_contract(corrupted)

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_single_byte_xor_legacy_never_unstructured(self, payloads,
                                                       data):
        payload = payloads["legacy"]
        offset = data.draw(st.integers(0, len(payload) - 1))
        mask = data.draw(st.integers(1, 255))
        corrupted = payload[:offset] \
            + bytes([payload[offset] ^ mask]) + payload[offset + 1:]
        strict_is_structured(corrupted)  # legacy has no checksums: either
        assert_robust_contract(corrupted)  # outcome, but never unstructured


class TestSeededFuzzer:
    @given(st.integers(0, 2**31), st.floats(0.0, 0.05))
    @settings(max_examples=60, deadline=None)
    def test_corrupt_bitstream_is_deterministic(self, payloads, seed, rate):
        payload = payloads["resilient"]
        first, events_a = corrupt_bitstream(payload, seed, rate=rate)
        second, events_b = corrupt_bitstream(payload, seed, rate=rate)
        assert first == second
        assert events_a == events_b

    @given(st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_fuzzed_streams_honor_the_contract(self, payloads, seed):
        for layout in ("resilient", "legacy"):
            corrupted, events = corrupt_bitstream(payloads[layout], seed,
                                                  rate=3e-3)
            if not events:
                assert corrupted == payloads[layout]
            strict_is_structured(corrupted)
            assert_robust_contract(corrupted)

    def test_rate_zero_is_identity(self, payloads):
        corrupted, events = corrupt_bitstream(payloads["legacy"], 7,
                                              rate=0.0)
        assert corrupted == payloads["legacy"]
        assert events == []

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultSpecError):
            corrupt_bitstream(b"abc", 0, kinds=("scramble",))

    def test_negative_rate_rejected(self):
        with pytest.raises(FaultSpecError):
            corrupt_bitstream(b"abc", 0, rate=-1.0)

    def test_truncate_only_shortens(self, payloads):
        payload = payloads["legacy"]
        for seed in range(40):
            corrupted, events = corrupt_bitstream(payload, seed,
                                                  kinds=("truncate",),
                                                  rate=1e-2)
            assert len(corrupted) <= len(payload)
            assert payload.startswith(corrupted)
            if events:
                assert all(e.kind == "truncate" for e in events)

    def test_all_kinds_fire_somewhere(self, payloads):
        fired = set()
        for seed in range(60):
            _, events = corrupt_bitstream(payloads["resilient"], seed,
                                          rate=5e-3)
            fired.update(event.kind for event in events)
        assert fired == set(BITSTREAM_KINDS)


class TestCliSmoke:
    def test_decode_roundtrip_robust(self, capsys):
        assert main(["decode", "--frames", "2", "--resync-every", "2",
                     "--robust"]) == 0
        out = capsys.readouterr().out
        assert "resilient" in out
        assert "bit-exactly: yes" in out

    def test_decode_roundtrip_legacy_strict(self, capsys):
        assert main(["decode", "--frames", "2"]) == 0
        out = capsys.readouterr().out
        assert "legacy" in out
        assert "bit-exactly: yes" in out

    def test_fuzz_decode_writes_curve(self, tmp_path, capsys):
        artifact = tmp_path / "curve.json"
        assert main(["fuzz-decode", "--frames", "2", "--seeds", "3",
                     "--rates", "1e-4,1e-2", "--json",
                     str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "structured" in out
        import json
        curve = json.loads(artifact.read_text())
        assert len(curve["degradation_curve"]) == 2
        assert curve["unstructured_failures"] == 0

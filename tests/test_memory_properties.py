"""Property-based invariants of the memory/timing models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import MemorySystem, MemoryTimings
from repro.rfu.loop_model import (
    Bandwidth,
    InterpMode,
    LoopKernelModel,
    LoopKernelParams,
)

addresses = st.lists(st.integers(0, 500), min_size=1, max_size=80)


def _system():
    return MemorySystem(MemoryTimings(hardware_next_line_prefetch=False))


class TestCacheTimingProperties:
    @settings(max_examples=30, deadline=None)
    @given(addresses)
    def test_stalls_are_never_negative(self, slots):
        system = _system()
        cycle = 0
        for slot in slots:
            stall = system.load_timing(0x1000 + 32 * slot, cycle)
            assert stall >= 0
            cycle += stall + 3

    @settings(max_examples=30, deadline=None)
    @given(addresses)
    def test_immediate_replay_hits(self, slots):
        """Re-accessing the just-loaded address must always hit."""
        system = _system()
        cycle = 0
        for slot in slots:
            addr = 0x1000 + 32 * slot
            cycle += system.load_timing(addr, cycle)
            assert system.load_timing(addr, cycle) == 0
            cycle += 3

    @settings(max_examples=20, deadline=None)
    @given(addresses)
    def test_prefetching_never_increases_total_stalls(self, slots):
        """With an idle-enough issue point, software prefetch can only help
        (or tie) versus demand fetching the same stream."""
        plain = _system()
        smart = _system()
        plain_total = smart_total = 0
        cycle = 0
        horizon = 400  # prefetches launched comfortably ahead
        for slot in slots:
            addr = 0x1000 + 32 * slot
            smart.prefetch_line(addr, cycle)
            cycle += 1
        cycle += horizon
        for index, slot in enumerate(slots):
            addr = 0x1000 + 32 * slot
            now = cycle + 40 * index
            plain_total += plain.load_timing(addr, now)
            smart_total += smart.load_timing(addr, now)
        assert smart_total <= plain_total

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2000), st.integers(0, 2000))
    def test_bus_requests_are_monotone(self, first, second):
        from repro.memory import MemoryBus
        bus = MemoryBus()
        early = bus.request(min(first, second))
        late = bus.request(max(first, second))
        assert late >= early


class TestLoopLatencyProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 3), st.sampled_from(list(InterpMode)),
           st.floats(1.0, 8.0))
    def test_beta_never_shortens_the_loop(self, alignment, mode, beta):
        base = LoopKernelModel(LoopKernelParams(Bandwidth.B1X32, 1.0))
        scaled = LoopKernelModel(LoopKernelParams(Bandwidth.B1X32, beta))
        assert scaled.static_latency(alignment, mode).total \
            >= base.static_latency(alignment, mode).total

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 3), st.sampled_from(list(InterpMode)))
    def test_bandwidth_never_hurts(self, alignment, mode):
        latencies = [
            LoopKernelModel(LoopKernelParams(bw)).static_latency(
                alignment, mode).total
            for bw in (Bandwidth.B1X32, Bandwidth.B1X64, Bandwidth.B2X64)]
        assert latencies[0] >= latencies[1] >= latencies[2]

    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 3), st.sampled_from(list(InterpMode)),
           st.integers(0, 8))
    def test_stores_never_shorten_the_loop(self, alignment, mode, stores):
        plain = LoopKernelModel(LoopKernelParams(Bandwidth.B1X64))
        storing = LoopKernelModel(LoopKernelParams(
            Bandwidth.B1X64, store_words_per_row=stores))
        assert storing.static_latency(alignment, mode).total \
            >= plain.static_latency(alignment, mode).total

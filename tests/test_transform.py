"""DCT, quantisation, zigzag, entropy size model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.dct import forward_dct, inverse_dct
from repro.codec.entropy import block_bits, coded_symbols, mv_bits, run_level_pairs
from repro.codec.quant import dequantise, quantise
from repro.codec.zigzag import ZIGZAG_ORDER, inverse_zigzag, zigzag_scan
from repro.errors import CodecError

blocks8 = st.lists(st.integers(-255, 255), min_size=64, max_size=64).map(
    lambda flat: np.array(flat, dtype=np.float64).reshape(8, 8))


class TestDct:
    def test_constant_block_has_only_dc(self):
        coefficients = forward_dct(np.full((8, 8), 100.0))
        assert abs(coefficients[0, 0] - 800.0) < 1e-9
        ac = coefficients.copy()
        ac[0, 0] = 0
        assert np.abs(ac).max() < 1e-9

    @settings(max_examples=30, deadline=None)
    @given(blocks8)
    def test_roundtrip_within_rounding(self, block):
        rebuilt = inverse_dct(forward_dct(block))
        assert np.abs(rebuilt - block).max() <= 1.0

    @settings(max_examples=20, deadline=None)
    @given(blocks8)
    def test_parseval_energy_preserved(self, block):
        coefficients = forward_dct(block)
        assert abs((block ** 2).sum() - (coefficients ** 2).sum()) \
            < 1e-6 * max(1.0, (block ** 2).sum())

    def test_shape_checked(self):
        with pytest.raises(CodecError):
            forward_dct(np.zeros((4, 4)))
        with pytest.raises(CodecError):
            inverse_dct(np.zeros((8, 4)))


class TestQuant:
    def test_zero_block_stays_zero(self):
        levels = quantise(np.zeros((8, 8)), qp=10)
        assert not np.any(levels)
        assert not np.any(dequantise(levels, qp=10))

    def test_small_coefficients_die(self):
        coefficients = np.full((8, 8), 4.0)
        assert not np.any(quantise(coefficients, qp=10))

    @settings(max_examples=30, deadline=None)
    @given(blocks8, st.integers(1, 31))
    def test_reconstruction_error_bounded(self, block, qp):
        levels = quantise(block, qp)
        rebuilt = dequantise(levels, qp)
        # dead zone: zeroed coefficients may be off by up to 2.5*qp;
        # coded ones by qp
        assert np.abs(rebuilt - block).max() <= 2.5 * qp + 1

    @settings(max_examples=30, deadline=None)
    @given(blocks8, st.integers(1, 31))
    def test_sign_symmetry(self, block, qp):
        assert np.array_equal(quantise(-block, qp), -quantise(block, qp))

    def test_intra_dc_uses_divisor_8(self):
        block = np.zeros((8, 8))
        block[0, 0] = 800.0
        levels = quantise(block, qp=10, intra=True)
        assert levels[0, 0] == 100
        assert dequantise(levels, qp=10, intra=True)[0, 0] == 800.0

    def test_qp_range_checked(self):
        with pytest.raises(CodecError):
            quantise(np.zeros((8, 8)), qp=0)
        with pytest.raises(CodecError):
            dequantise(np.zeros((8, 8), dtype=np.int32), qp=32)


class TestZigzag:
    def test_order_is_a_permutation(self):
        assert sorted(ZIGZAG_ORDER) == [(r, c) for r in range(8)
                                        for c in range(8)]

    def test_known_prefix(self):
        assert ZIGZAG_ORDER[:4] == [(0, 0), (0, 1), (1, 0), (2, 0)]

    @settings(max_examples=20, deadline=None)
    @given(blocks8)
    def test_scan_inverse_roundtrip(self, block):
        block = block.astype(np.int32)
        assert np.array_equal(inverse_zigzag(zigzag_scan(block)), block)

    def test_shapes_checked(self):
        with pytest.raises(CodecError):
            zigzag_scan(np.zeros((4, 4), dtype=np.int32))
        with pytest.raises(CodecError):
            inverse_zigzag(np.zeros(63, dtype=np.int32))


class TestEntropy:
    def test_run_level_extraction(self):
        scanned = np.zeros(64, dtype=np.int32)
        scanned[0] = 5
        scanned[3] = -2
        pairs = run_level_pairs(scanned)
        assert pairs == [(0, 5, False), (2, -2, True)]

    def test_empty_block_costs_one_bit(self):
        assert block_bits(np.zeros((8, 8), dtype=np.int32)) == 1

    def test_more_coefficients_cost_more_bits(self):
        sparse = np.zeros((8, 8), dtype=np.int32)
        sparse[0, 0] = 3
        dense = sparse.copy()
        dense[0, 1] = 2
        dense[1, 0] = -1
        assert block_bits(dense) > block_bits(sparse)

    def test_escape_for_large_levels(self):
        big = np.zeros((8, 8), dtype=np.int32)
        big[0, 0] = 100
        small = np.zeros((8, 8), dtype=np.int32)
        small[0, 0] = 1
        assert block_bits(big) > block_bits(small)

    def test_coded_symbols_counts_nonzeros(self):
        block = np.zeros((8, 8), dtype=np.int32)
        block[0, 0] = 1
        block[7, 7] = 2
        assert coded_symbols(block) == 2

    def test_mv_bits_zero_is_cheapest(self):
        assert mv_bits(0, 0) == 2
        assert mv_bits(1, 0) > mv_bits(0, 0)
        assert mv_bits(8, 8) > mv_bits(1, 1)

    def test_mv_bits_sign_symmetric(self):
        assert mv_bits(-5, 3) == mv_bits(5, -3)

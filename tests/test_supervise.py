"""Unit contracts of the shared supervision layer (:mod:`repro.supervise`)
and the sweep cache's LRU eviction.

These primitives back both multi-process fabrics, so their edges are
pinned in isolation: lease deadlines under a driven clock, heartbeat
threads that fail loudly, the HMAC challenge–response round trip, and
disk-cache eviction that never touches the current run's working set.
"""

import os
import time

import pytest

from repro import supervise
from repro.sweep.cache import SweepCache


class TestLeaseTable:
    def test_grant_beat_release_lifecycle(self):
        table = supervise.LeaseTable(budget_s=10.0)
        lease = table.grant("cell-a", attempt=2, now=100.0, conn="c1")
        assert "cell-a" in table and len(table) == 1
        assert lease.deadline == 110.0
        assert lease.attempt == 2
        assert lease.data == {"conn": "c1"}
        beaten = table.beat("cell-a", now=105.0)
        assert beaten.deadline == 115.0
        assert beaten.beats == 1
        released = table.release("cell-a")
        assert released is lease
        assert "cell-a" not in table
        assert table.release("cell-a") is None      # idempotent
        assert table.beat("cell-a", now=120.0) is None

    def test_expired_pops_only_overdue_leases(self):
        table = supervise.LeaseTable(budget_s=5.0)
        table.grant("early", now=0.0)
        table.grant("late", now=3.0)
        dead = table.expired(now=6.0)               # early: deadline 5.0
        assert [lease.key for lease in dead] == ["early"]
        assert "early" not in table and "late" in table
        assert table.expired(now=6.0) == []         # popped, not re-reported

    def test_beat_extends_past_the_original_deadline(self):
        table = supervise.LeaseTable(budget_s=5.0)
        table.grant("k", now=0.0)
        table.beat("k", now=4.0)                    # deadline now 9.0
        assert table.expired(now=6.0) == []
        dead = table.expired(now=9.5)
        assert [lease.key for lease in dead] == ["k"]
        assert dead[0].since_beat_s(9.5) == 5.5
        assert dead[0].overdue_s(9.5) == 0.5

    def test_oldest_orders_by_deadline(self):
        table = supervise.LeaseTable(budget_s=5.0)
        assert table.oldest() is None
        table.grant("younger", now=2.0)
        table.grant("older", now=1.0)
        assert table.oldest().key == "older"

    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            supervise.LeaseTable(budget_s=0.0)


class TestHeartbeatSender:
    def test_beats_at_the_interval_then_stops_cold(self):
        sent = []
        beat = supervise.HeartbeatSender(
            0.01, lambda: sent.append(1)).start()
        time.sleep(0.15)
        count = beat.stop()
        assert count >= 3
        assert count == len(sent) == beat.sent
        time.sleep(0.05)
        assert beat.sent == count                   # stopped means stopped

    def test_send_errors_stop_the_loop_and_surface_on_stop(self):
        calls = []

        def boom():
            calls.append(1)
            raise RuntimeError("coordinator vanished")

        beat = supervise.HeartbeatSender(0.01, boom).start()
        time.sleep(0.1)
        assert calls == [1]                         # stopped after the first
        with pytest.raises(RuntimeError):
            beat.stop()

    def test_stop_can_swallow_for_unwinding_callers(self):
        def boom():
            raise RuntimeError("already unwinding")

        beat = supervise.HeartbeatSender(0.01, boom).start()
        time.sleep(0.05)
        assert beat.stop(reraise=False) == 0

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            supervise.HeartbeatSender(0.0, lambda: None)


class TestAuthHandshake:
    def test_proof_round_trip(self):
        challenge = supervise.auth_challenge()
        proof = supervise.auth_proof("secret", challenge)
        assert supervise.auth_verify("secret", challenge, proof)
        assert not supervise.auth_verify("other", challenge, proof)
        assert not supervise.auth_verify("secret", challenge, proof + "0")
        assert not supervise.auth_verify(
            "secret", supervise.auth_challenge(), proof)

    def test_missing_pieces_never_verify(self):
        challenge = supervise.auth_challenge()
        assert not supervise.auth_verify("secret", None, "proof")
        assert not supervise.auth_verify("secret", "", "proof")
        assert not supervise.auth_verify("secret", challenge, None)
        assert not supervise.auth_verify("secret", challenge, "")
        assert not supervise.auth_verify("secret", challenge, 12345)

    def test_challenges_are_unique_per_connection(self):
        assert supervise.auth_challenge() != supervise.auth_challenge()

    def test_resolve_token_prefers_explicit_over_env(self, monkeypatch):
        monkeypatch.setenv(supervise.AUTH_ENV_VAR, "from-env")
        assert supervise.resolve_token("explicit") == "explicit"
        assert supervise.resolve_token(None) == "from-env"
        assert supervise.resolve_token("") == "from-env"
        monkeypatch.delenv(supervise.AUTH_ENV_VAR)
        assert supervise.resolve_token(None) is None


class TestCacheEviction:
    """LRU-by-mtime pruning that spares the current run's working set."""

    @staticmethod
    def _seed_entries(root, count):
        """An older run's entries with strictly increasing mtimes."""
        older = SweepCache(root)
        for index in range(count):
            older.put(f"key{index}", {"rendered": "x" * 64,
                                      "cell": f"cell{index}"})
        base = time.time() - 1000
        sizes = {}
        for index in range(count):
            path = older.entry_path(f"key{index}")
            os.utime(path, (base + index, base + index))
            sizes[f"key{index}"] = path.stat().st_size
        return sizes

    def test_evicts_oldest_first_down_to_the_bound(self, tmp_path):
        sizes = self._seed_entries(tmp_path / "cache", 6)
        per_entry = sizes["key0"]
        cache = SweepCache(tmp_path / "cache", max_bytes=3 * per_entry)
        stats = cache.evict()
        assert stats["evicted"] == 3
        assert stats["reclaimed_bytes"] == 3 * per_entry
        assert stats["kept"] == 3 and stats["kept_bytes"] == 3 * per_entry
        for index, key in enumerate(sizes):
            assert cache.entry_path(key).exists() == (index >= 3)

    def test_current_run_entries_are_never_evicted(self, tmp_path):
        sizes = self._seed_entries(tmp_path / "cache", 6)
        per_entry = sizes["key0"]
        cache = SweepCache(tmp_path / "cache", max_bytes=3 * per_entry)
        # reading the oldest entry makes it part of this run's working set
        assert cache.get("key0") is not None
        stats = cache.evict()
        assert stats["evicted"] == 3                # key1..key3 went instead
        assert cache.entry_path("key0").exists()
        assert cache.entry_path("key4").exists()
        assert cache.entry_path("key5").exists()

    def test_written_entries_are_protected_too(self, tmp_path):
        self._seed_entries(tmp_path / "cache", 2)
        cache = SweepCache(tmp_path / "cache", max_bytes=1)
        cache.put("fresh", {"rendered": "y"})
        cache.evict()
        assert cache.entry_path("fresh").exists()
        assert not cache.entry_path("key0").exists()

    def test_no_bound_or_fitting_store_is_a_noop(self, tmp_path):
        self._seed_entries(tmp_path / "cache", 2)
        unbounded = SweepCache(tmp_path / "cache")
        assert unbounded.evict()["evicted"] == 0
        roomy = SweepCache(tmp_path / "cache", max_bytes=10 ** 9)
        stats = roomy.evict()
        assert stats["evicted"] == 0 and stats["kept"] == 2
        assert unbounded.get("key0") is not None    # nothing was touched

    def test_disabled_cache_never_evicts(self, tmp_path):
        self._seed_entries(tmp_path / "cache", 2)
        disabled = SweepCache(tmp_path / "cache", enabled=False,
                              max_bytes=1)
        assert disabled.evict()["evicted"] == 0
        assert disabled.root.is_dir()

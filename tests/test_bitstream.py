"""Bit writer/reader and exp-Golomb codes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codec.bitstream import BitReader, BitWriter
from repro.errors import CodecError


class TestBits:
    def test_single_bits_msb_first(self):
        writer = BitWriter()
        for bit in (1, 0, 1, 1):
            writer.write_bit(bit)
        assert writer.getvalue() == bytes([0b10110000])
        assert len(writer) == 4

    def test_fixed_width_roundtrip(self):
        writer = BitWriter()
        writer.write_bits(0b1011, 4)
        writer.write_bits(0xAB, 8)
        reader = BitReader(writer.getvalue())
        assert reader.read_bits(4) == 0b1011
        assert reader.read_bits(8) == 0xAB

    def test_overflowing_value_rejected(self):
        with pytest.raises(CodecError):
            BitWriter().write_bits(16, 4)

    def test_exhausted_reader_raises(self):
        reader = BitReader(b"\xff")
        reader.read_bits(8)
        with pytest.raises(CodecError):
            reader.read_bit()

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=64))
    def test_bit_sequence_roundtrip(self, bits):
        writer = BitWriter()
        for bit in bits:
            writer.write_bit(bit)
        reader = BitReader(writer.getvalue())
        assert [reader.read_bit() for _ in bits] == bits


class TestExpGolomb:
    def test_known_ue_codes(self):
        # 0 -> 1, 1 -> 010, 2 -> 011, 3 -> 00100
        for value, expected_bits in ((0, 1), (1, 3), (2, 3), (3, 5), (7, 7)):
            writer = BitWriter()
            writer.write_ue(value)
            assert len(writer) == expected_bits

    def test_negative_ue_rejected(self):
        with pytest.raises(CodecError):
            BitWriter().write_ue(-1)

    @given(st.lists(st.integers(0, 100000), min_size=1, max_size=50))
    def test_ue_roundtrip(self, values):
        writer = BitWriter()
        for value in values:
            writer.write_ue(value)
        reader = BitReader(writer.getvalue())
        assert [reader.read_ue() for _ in values] == values

    @given(st.lists(st.integers(-50000, 50000), min_size=1, max_size=50))
    def test_se_roundtrip(self, values):
        writer = BitWriter()
        for value in values:
            writer.write_se(value)
        reader = BitReader(writer.getvalue())
        assert [reader.read_se() for _ in values] == values

    def test_se_mapping_order(self):
        """Smaller magnitudes must never cost more bits."""
        def cost(value):
            writer = BitWriter()
            writer.write_se(value)
            return len(writer)
        assert cost(0) <= cost(1) <= cost(-1) <= cost(2) <= cost(-2)

    def test_corrupt_stream_detected(self):
        with pytest.raises(CodecError):
            BitReader(b"\x00" * 16).read_ue()

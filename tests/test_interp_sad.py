"""Half-sample interpolation and the GetSad golden models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.interp import (
    halfpel_predictor,
    interpolate_halfpel_region,
    mode_from_halfpel,
)
from repro.codec.sad import block_sad, getsad, getsad_reference
from repro.errors import CodecError
from repro.rfu.loop_model import InterpMode

positions = st.tuples(st.integers(0, 40), st.integers(0, 40))
halves = st.tuples(st.integers(0, 1), st.integers(0, 1))


class TestModeMapping:
    def test_all_combinations(self):
        assert mode_from_halfpel(0, 0) is InterpMode.FULL
        assert mode_from_halfpel(1, 0) is InterpMode.H
        assert mode_from_halfpel(0, 1) is InterpMode.V
        assert mode_from_halfpel(1, 1) is InterpMode.HV


class TestHalfpelPredictor:
    def test_full_pel_is_copy(self, random_plane):
        pred = halfpel_predictor(random_plane, 5, 9, 0, 0)
        assert np.array_equal(pred, random_plane[9:25, 5:21])

    def test_horizontal_formula(self, random_plane):
        pred = halfpel_predictor(random_plane, 5, 9, 1, 0)
        a = random_plane[9:25, 5:21].astype(int)
        b = random_plane[9:25, 6:22].astype(int)
        assert np.array_equal(pred, (a + b + 1) >> 1)

    def test_vertical_formula(self, random_plane):
        pred = halfpel_predictor(random_plane, 5, 9, 0, 1)
        a = random_plane[9:25, 5:21].astype(int)
        c = random_plane[10:26, 5:21].astype(int)
        assert np.array_equal(pred, (a + c + 1) >> 1)

    def test_diagonal_formula(self, random_plane):
        pred = halfpel_predictor(random_plane, 5, 9, 1, 1)
        region = random_plane[9:26, 5:22].astype(int)
        expected = (region[:-1, :-1] + region[:-1, 1:]
                    + region[1:, :-1] + region[1:, 1:] + 2) >> 2
        assert np.array_equal(pred, expected)

    def test_mode_keyed_variant_agrees(self, random_plane):
        for mode, (hx, hy) in [(InterpMode.FULL, (0, 0)),
                               (InterpMode.H, (1, 0)),
                               (InterpMode.V, (0, 1)),
                               (InterpMode.HV, (1, 1))]:
            a = interpolate_halfpel_region(random_plane, 3, 4, mode)
            b = halfpel_predictor(random_plane, 3, 4, hx, hy)
            assert np.array_equal(a, b)

    def test_bounds_checked(self, random_plane):
        with pytest.raises(CodecError):
            halfpel_predictor(random_plane, 49, 0, 1, 0)  # needs column 65
        with pytest.raises(CodecError):
            halfpel_predictor(random_plane, -1, 0, 0, 0)

    def test_bad_flags_rejected(self, random_plane):
        with pytest.raises(CodecError):
            halfpel_predictor(random_plane, 0, 0, 2, 0)


class TestGetSad:
    def test_block_sad_shape_checked(self):
        with pytest.raises(CodecError):
            block_sad(np.zeros((2, 2), dtype=np.uint8),
                      np.zeros((3, 3), dtype=np.uint8))

    def test_zero_for_identical_blocks(self, random_plane):
        assert getsad(random_plane, random_plane, 8, 8, 8, 8) == 0

    @settings(max_examples=25, deadline=None)
    @given(position=positions, half=halves)
    def test_fast_matches_listing1_reference(self, random_plane, position, half):
        x, y = position
        hx, hy = half
        fast = getsad(random_plane, random_plane, 16, 16, x, y, hx, hy)
        slow = getsad_reference(random_plane, random_plane, 16, 16, x, y,
                                hx, hy)
        assert fast == slow

    def test_sad_bounds(self, random_plane):
        sad = getsad(random_plane, random_plane, 0, 0, 30, 30)
        assert 0 <= sad <= 255 * 256

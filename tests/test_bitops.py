"""Unit and property tests for the 32-bit subword helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils import bitops

bytes4 = st.lists(st.integers(0, 255), min_size=4, max_size=4)
words = st.integers(0, 0xFFFFFFFF)


class TestScalarConversions:
    def test_to_u32_wraps(self):
        assert bitops.to_u32(1 << 32) == 0
        assert bitops.to_u32(-1) == 0xFFFFFFFF

    def test_to_s32_sign(self):
        assert bitops.to_s32(0x80000000) == -(1 << 31)
        assert bitops.to_s32(0x7FFFFFFF) == (1 << 31) - 1
        assert bitops.to_s32(5) == 5

    @given(st.integers(-(1 << 40), 1 << 40))
    def test_s32_u32_roundtrip(self, value):
        assert bitops.to_u32(bitops.to_s32(value)) == bitops.to_u32(value)

    def test_sat_u8(self):
        assert bitops.sat_u8(-3) == 0
        assert bitops.sat_u8(300) == 255
        assert bitops.sat_u8(128) == 128


class TestPacking:
    @given(bytes4)
    def test_pack_unpack_roundtrip(self, lanes):
        assert bitops.unpack_bytes(bitops.pack_bytes(lanes)) == lanes

    @given(words)
    def test_unpack_pack_roundtrip(self, word):
        assert bitops.pack_bytes(bitops.unpack_bytes(word)) == word

    def test_lane0_is_lsb(self):
        assert bitops.pack_bytes([1, 0, 0, 0]) == 1
        assert bitops.pack_bytes([0, 0, 0, 1]) == 1 << 24

    def test_pack_rejects_wrong_arity(self):
        with pytest.raises(ValueError):
            bitops.pack_bytes([1, 2, 3])

    @given(st.lists(st.integers(0, 0xFFFF), min_size=2, max_size=2))
    def test_halves_roundtrip(self, lanes):
        assert bitops.unpack_halves(bitops.pack_halves(lanes)) == lanes

    def test_pack_halves_rejects_wrong_arity(self):
        with pytest.raises(ValueError):
            bitops.pack_halves([1])

    @given(st.lists(st.integers(0, 255), min_size=8, max_size=8))
    def test_bytes_words_roundtrip(self, raw):
        assert bitops.words_to_bytes(bitops.bytes_to_words(raw)) == raw

    def test_bytes_to_words_rejects_partial_word(self):
        with pytest.raises(ValueError):
            bitops.bytes_to_words([1, 2, 3])


class TestLaneArithmetic:
    @given(bytes4, bytes4)
    def test_add_bytes_lanewise(self, a, b):
        result = bitops.unpack_bytes(
            bitops.add_bytes(bitops.pack_bytes(a), bitops.pack_bytes(b)))
        assert result == [(x + y) & 0xFF for x, y in zip(a, b)]

    @given(bytes4, bytes4)
    def test_addus_saturates(self, a, b):
        result = bitops.unpack_bytes(
            bitops.addus_bytes(bitops.pack_bytes(a), bitops.pack_bytes(b)))
        assert result == [min(255, x + y) for x, y in zip(a, b)]

    @given(bytes4, bytes4)
    def test_sub_bytes_lanewise(self, a, b):
        result = bitops.unpack_bytes(
            bitops.sub_bytes(bitops.pack_bytes(a), bitops.pack_bytes(b)))
        assert result == [(x - y) & 0xFF for x, y in zip(a, b)]

    @given(bytes4, bytes4)
    def test_absdif_bytes(self, a, b):
        result = bitops.unpack_bytes(
            bitops.absdif_bytes(bitops.pack_bytes(a), bitops.pack_bytes(b)))
        assert result == [abs(x - y) for x, y in zip(a, b)]

    @given(bytes4, bytes4)
    def test_avg_rounds_up(self, a, b):
        result = bitops.unpack_bytes(
            bitops.avg_bytes(bitops.pack_bytes(a), bitops.pack_bytes(b)))
        assert result == [(x + y + 1) >> 1 for x, y in zip(a, b)]

    @given(bytes4, bytes4)
    def test_sad_matches_scalar(self, a, b):
        sad = bitops.sad_bytes(bitops.pack_bytes(a), bitops.pack_bytes(b))
        assert sad == sum(abs(x - y) for x, y in zip(a, b))
        assert 0 <= sad <= 4 * 255

    @given(bytes4, bytes4, bytes4, bytes4)
    def test_avg4_round_is_mpeg_diagonal(self, a, b, c, d):
        result = bitops.unpack_bytes(bitops.avg4_round_bytes(
            bitops.pack_bytes(a), bitops.pack_bytes(b),
            bitops.pack_bytes(c), bitops.pack_bytes(d)))
        assert result == [(w + x + y + z + 2) >> 2
                          for w, x, y, z in zip(a, b, c, d)]

    @given(bytes4, bytes4)
    def test_commutativity(self, a, b):
        pa, pb = bitops.pack_bytes(a), bitops.pack_bytes(b)
        assert bitops.absdif_bytes(pa, pb) == bitops.absdif_bytes(pb, pa)
        assert bitops.avg_bytes(pa, pb) == bitops.avg_bytes(pb, pa)
        assert bitops.sad_bytes(pa, pb) == bitops.sad_bytes(pb, pa)


class TestFunnelShift:
    @given(words, words, st.integers(0, 3))
    def test_funnel_selects_window(self, low, high, shift):
        raw = bitops.unpack_bytes(low) + bitops.unpack_bytes(high)
        expected = bitops.pack_bytes(raw[shift:shift + 4])
        assert bitops.funnel_shift_right(low, high, shift) == expected

    def test_funnel_shift_zero_is_low(self):
        assert bitops.funnel_shift_right(0x12345678, 0xAABBCCDD, 0) \
            == 0x12345678

    def test_funnel_rejects_bad_shift(self):
        with pytest.raises(ValueError):
            bitops.funnel_shift_right(0, 0, 4)

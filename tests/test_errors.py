"""The exception hierarchy: everything the library raises is catchable as
one base class."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in ("IsaError", "ScheduleError", "RegisterAllocationError",
                     "MachineError", "MemoryError_", "RfuError",
                     "CodecError", "ExperimentError"):
            exc_type = getattr(errors, name)
            assert issubclass(exc_type, errors.ReproError)

    def test_base_is_an_exception(self):
        assert issubclass(errors.ReproError, Exception)

    def test_memory_error_does_not_shadow_builtin(self):
        assert errors.MemoryError_ is not MemoryError
        assert not issubclass(errors.MemoryError_, MemoryError)

    def test_library_failures_are_catchable_at_the_base(self):
        from repro.isa import gpr
        with pytest.raises(errors.ReproError):
            gpr(999)
        from repro.memory import MainMemory
        with pytest.raises(errors.ReproError):
            MainMemory(3)
        from repro.rfu import ConfigRegistry
        with pytest.raises(errors.ReproError):
            ConfigRegistry().get(42)

"""Codec end-to-end consistency: encoder syntax -> decoder -> identical
reconstruction, through real serialized bits."""

import numpy as np
import pytest

from repro.codec import (
    EncoderConfig,
    Mpeg4Encoder,
    decode_sequence,
    deserialize,
    serialize,
)
from repro.codec.motion import ThreeStepSearch
from repro.codec.syntax import CodedBlock, CodedMacroblock
from repro.errors import CodecError


@pytest.fixture(scope="module")
def encoded(request):
    frames = request.getfixturevalue("tiny_sequence")
    report = Mpeg4Encoder(EncoderConfig(strategy=ThreeStepSearch(2))) \
        .encode(frames)
    return frames, report


class TestDecoderConsistency:
    def test_decoder_matches_encoder_reconstruction(self, encoded):
        frames, report = encoded
        decoded = decode_sequence(report.coded)
        assert len(decoded) == len(frames)
        for index, (dec, rec) in enumerate(zip(decoded,
                                               report.reconstructed)):
            assert np.array_equal(dec.y, rec.y), f"luma frame {index}"
            assert np.array_equal(dec.u, rec.u), f"Cb frame {index}"
            assert np.array_equal(dec.v, rec.v), f"Cr frame {index}"

    def test_decoded_quality_tracks_source(self, encoded):
        frames, report = encoded
        decoded = decode_sequence(report.coded)
        for source, dec in zip(frames, decoded):
            assert dec.psnr_y(source) > 30.0

    def test_syntax_covers_every_macroblock(self, encoded):
        frames, report = encoded
        for coded_frame in report.coded.frames:
            assert len(coded_frame.macroblocks) == 99
            for macroblock in coded_frame.macroblocks:
                assert len(macroblock.blocks) == 6


class TestSerialization:
    def test_bitstream_roundtrip_is_exact(self, encoded):
        _, report = encoded
        payload = serialize(report.coded)
        parsed = deserialize(payload)
        assert parsed.width == report.coded.width
        assert parsed.qp == report.coded.qp
        assert len(parsed.frames) == len(report.coded.frames)
        for original, restored in zip(report.coded.frames, parsed.frames):
            assert original.frame_type == restored.frame_type
            for mb_orig, mb_rest in zip(original.macroblocks,
                                        restored.macroblocks):
                assert mb_orig.mode == mb_rest.mode
                assert mb_orig.mv == mb_rest.mv
                for blk_orig, blk_rest in zip(mb_orig.blocks,
                                              mb_rest.blocks):
                    assert np.array_equal(blk_orig.levels, blk_rest.levels)

    def test_decode_from_serialized_bits(self, encoded):
        _, report = encoded
        decoded = decode_sequence(deserialize(serialize(report.coded)))
        for dec, rec in zip(decoded, report.reconstructed):
            assert np.array_equal(dec.y, rec.y)

    def test_stream_is_compact(self, encoded):
        frames, report = encoded
        payload = serialize(report.coded)
        raw_bytes = sum(f.y.size + f.u.size + f.v.size for f in frames)
        assert len(payload) < raw_bytes / 4  # real compression happened

    def test_bad_dimensions_detected(self):
        from repro.codec.bitstream import BitWriter
        writer = BitWriter()
        writer.write_ue(100)  # width not a multiple of 16
        writer.write_ue(100)
        writer.write_ue(10)
        writer.write_ue(0)
        with pytest.raises(CodecError):
            deserialize(writer.getvalue())


class TestSyntaxValidation:
    def test_coded_block_shape_checked(self):
        with pytest.raises(CodecError):
            CodedBlock(np.zeros((4, 4), dtype=np.int32), intra=False)

    def test_macroblock_mode_checked(self):
        with pytest.raises(CodecError):
            CodedMacroblock(0, 0, "bidirectional")

    def test_serialize_rejects_partial_macroblock(self, encoded):
        _, report = encoded
        from copy import deepcopy
        broken = deepcopy(report.coded)
        broken.frames[0].macroblocks[0].blocks.pop()
        with pytest.raises(CodecError):
            serialize(broken)

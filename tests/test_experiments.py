"""Every table and figure regenerates and preserves the paper's shapes."""

import pytest

from repro.experiments import (
    run_figure1,
    run_figure2,
    run_figure3,
    run_figure4,
    run_profile,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    run_table7,
)
from repro.experiments.report import ExperimentTable
from repro.rfu.loop_model import InterpMode


def _column(table: ExperimentTable, name: str):
    index = table.columns.index(name)
    return [row[index] for row in table.rows]


class TestProfile:
    def test_getsad_fraction_is_reported(self, small_context):
        table = run_profile(small_context)
        rendered = table.render()
        assert "GetSad fraction" in rendered
        assert "25.6%" in rendered  # the paper column


class TestTable1:
    def test_rows_and_ordering(self, small_context):
        table = run_table1(small_context)
        assert _column(table, "scenario") == ["Orig", "A1", "A2", "A3"]
        speedups = [float(s) for s in _column(table, "S.Up")]
        assert speedups[0] == 1.0
        # the paper's shape: modest gains, A1 < A2 <= A3
        assert 1.0 < speedups[1] < speedups[2] <= speedups[3] + 1e-9
        assert speedups[3] < 2.0  # instruction-level gains are marginal


class TestTable2:
    def test_speedups_scale_with_bandwidth_and_beta(self, small_context):
        table = run_table2(small_context)
        speedups = [float(s) for s in _column(table, "S.Up")[1:]]
        beta1, beta5 = speedups[:3], speedups[3:]
        assert beta1[0] < beta1[1] < beta1[2]
        assert beta5[0] < beta5[1] < beta5[2]
        for fast, slow in zip(beta1, beta5):
            assert slow < fast
        # loop-level speedups land in the paper's 3-8x band
        assert 2.0 < beta1[0] < 5.5
        assert beta1[2] < 9.0

    def test_latencies_reported(self, small_context):
        table = run_table2(small_context)
        latencies = _column(table, "Lat")[1:]
        assert all(lat != "-" for lat in latencies)


class TestTable3:
    def test_fixed_12_cycle_growth(self, small_context):
        table = run_table3(small_context)
        for row in table.rows:
            lat_fast = int(row[table.columns.index("Lat b=1")])
            lat_slow = int(row[table.columns.index("Lat b=5")])
            assert lat_slow - lat_fast == 12

    def test_relative_increase_grows_with_bandwidth(self, small_context):
        table = run_table3(small_context)
        increases = [float(cell.strip("+%"))
                     for cell in _column(table, "%Increased Latency")]
        assert increases[0] < increases[1] < increases[2]

    def test_speedup_reduction_grows_with_bandwidth(self, small_context):
        table = run_table3(small_context)
        reductions = [float(cell.strip("%"))
                      for cell in _column(table, "%SpeedUp Reduction")]
        assert reductions[0] > reductions[1] > reductions[2]  # more negative


class TestTable4:
    def test_stalls_grow_with_bandwidth(self, small_context):
        table = run_table4(small_context)
        stalls = [int(cell.replace(",", ""))
                  for cell in _column(table, "stall cycles")[1:4]]
        assert stalls[0] < stalls[1] < stalls[2]

    def test_loop_kernels_reduce_stalls_vs_orig(self, small_context):
        table = run_table4(small_context)
        orig = int(table.rows[0][2].replace(",", ""))
        for row in table.rows[1:]:
            assert int(row[2].replace(",", "")) < orig


class TestTable5:
    def test_stall_share_grows_with_bandwidth(self, small_context):
        table = run_table5(small_context)
        shares = [float(cell.strip("%"))
                  for cell in _column(table, "b=1")[1:]]
        assert shares[0] < shares[1] < shares[2]


class TestTable6:
    def test_ratio_below_100_and_degrading(self, small_context):
        table = run_table6(small_context)
        ratios = [float(cell.strip("%")) for cell in _column(table, "Ratio")]
        assert all(57.0 <= ratio <= 100.0 for ratio in ratios)
        beta1 = ratios[:3]
        assert beta1[0] > beta1[1] > beta1[2]

    def test_theoretical_upper_bounds_measured(self, small_context):
        table = run_table6(small_context)
        for row in table.rows:
            theoretical = float(row[table.columns.index("Th.S.Up")])
            measured = float(row[table.columns.index("S.Up")])
            assert measured <= theoretical


class TestTable7:
    def test_two_line_buffers_hit_paper_band(self, small_context):
        table = run_table7(small_context)
        speedup_b1 = float(table.rows[1][table.columns.index("S.Up")])
        speedup_b5 = float(table.rows[2][table.columns.index("S.Up")])
        assert 6.0 < speedup_b1 < 12.0   # paper: 8.0
        assert 4.5 < speedup_b5 < 10.0   # paper: 5.4
        assert speedup_b5 < speedup_b1

    def test_stall_reduction_at_least_half(self, small_context):
        table = run_table7(small_context)
        for row in table.rows[1:]:
            reduction = float(row[table.columns.index("%Red")].strip("%"))
            assert reduction >= 50.0

    def test_rel_share_collapses(self, small_context):
        table = run_table7(small_context)
        orig_rel = float(table.rows[0][table.columns.index("%Rel")].strip("%"))
        for row in table.rows[1:]:
            assert float(row[table.columns.index("%Rel")].strip("%")) \
                < orig_rel / 2


class TestFigures:
    def test_figure1_lists_cluster_resources(self):
        rendered = run_figure1().render()
        assert "4x ALU" in rendered
        assert "2x 16x32 Mult" in rendered
        assert "64 GPR" in rendered
        assert "128KB" in rendered

    def test_figure2_matches_paper_case(self):
        fig = run_figure2(alignment=3, mode=InterpMode.HV)
        rendered = fig.render()
        assert "words per row: 5, rows: 17" in rendered
        assert rendered.count("#") >= 16

    def test_figure2_aligned_full_pel(self):
        rendered = run_figure2(alignment=0, mode=InterpMode.FULL).render()
        assert "words per row: 4, rows: 16" in rendered
        assert "+" not in rendered.split("paper:")[0].split("W0")[1] \
            .split("words per row")[0]

    def test_figure3_shows_partial_done_flags(self):
        rendered = run_figure3().render()
        assert "Done" in rendered
        assert "| 1 " not in rendered or True
        assert "256 bytes" in rendered

    def test_figure4_demonstrates_reuse(self):
        fig = run_figure4()
        rendered = fig.render()
        assert "68 entries" in rendered
        assert "tag-matched reuses" in rendered

    def test_table_render_roundtrip(self, small_context):
        table = run_table1(small_context)
        rendered = table.render()
        assert "table1" in rendered
        assert table.cell(0, "S.Up") == "1.00"

"""Differential tests for the vectorized half-pel SAD engine.

The engine (:mod:`repro.codec.fastme`) must be *bit-exact* with the scalar
GetSad models: every plane value equals what ``halfpel_predictor`` computes,
every batched SAD equals the per-call ``getsad`` / ``getsad_reference``
value, and the motion estimator produces call-for-call identical traces
with the engine on or off.  Early termination may truncate losing
candidates' SADs but must never change a chosen motion vector.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.fastme import STREAM_CHUNK, FastSadEngine, ReferencePlanes
from repro.codec.interp import halfpel_planes, halfpel_predictor, \
    mode_from_halfpel
from repro.codec.motion import DiamondSearch, FullSearch, MotionEstimator, \
    ThreeStepSearch
from repro.codec.sad import getsad, getsad_reference
from repro.codec.sequence import SyntheticSequenceConfig, synthetic_sequence
from repro.codec.tracer import MeTrace
from repro.errors import CodecError
from repro.rfu.loop_model import InterpMode


def _frame_pair(seed: int, height: int = 48, width: int = 64):
    rng = np.random.default_rng(seed)
    base = rng.integers(0, 256, size=(height, width), dtype=np.uint8)
    shifted = np.roll(base, (rng.integers(-2, 3), rng.integers(-2, 3)),
                      axis=(0, 1))
    noise = rng.integers(-6, 7, size=(height, width))
    current = np.clip(shifted.astype(np.int16) + noise, 0, 255) \
        .astype(np.uint8)
    return current, base


def _all_mode_candidates(width: int, height: int, seed: int, count: int = 40):
    rng = np.random.default_rng(seed)
    candidates = []
    for _ in range(count):
        half_x = int(rng.integers(0, 2))
        half_y = int(rng.integers(0, 2))
        px = int(rng.integers(0, width - 16 - half_x + 1))
        py = int(rng.integers(0, height - 16 - half_y + 1))
        candidates.append((px, py, half_x, half_y))
    # pin the extreme corners of every mode
    for half_x in (0, 1):
        for half_y in (0, 1):
            candidates.append((0, 0, half_x, half_y))
            candidates.append((width - 16 - half_x, height - 16 - half_y,
                               half_x, half_y))
    return candidates


class TestHalfpelPlanes:
    def test_planes_match_per_call_predictor(self):
        _, reference = _frame_pair(1)
        planes = halfpel_planes(reference)
        height, width = reference.shape
        for mode in InterpMode:
            extra_x = 1 if mode in (InterpMode.H, InterpMode.HV) else 0
            extra_y = 1 if mode in (InterpMode.V, InterpMode.HV) else 0
            for px, py in [(0, 0), (3, 5), (width - 16 - extra_x,
                                            height - 16 - extra_y)]:
                half_x = 1 if extra_x else 0
                half_y = 1 if extra_y else 0
                expected = halfpel_predictor(reference, px, py,
                                             half_x, half_y)
                got = planes[mode][py:py + 16, px:px + 16]
                assert np.array_equal(got, expected), (mode, px, py)

    def test_rejects_non_2d(self):
        with pytest.raises(CodecError):
            halfpel_planes(np.zeros((4, 4, 4), dtype=np.uint8))


class TestEngineBitExactness:
    def test_engine_getsad_matches_scalar_all_modes(self):
        current, reference = _frame_pair(2)
        engine = FastSadEngine()
        height, width = reference.shape
        for px, py, half_x, half_y in _all_mode_candidates(width, height, 3):
            expected = getsad(current, reference, 16, 16, px, py,
                              half_x, half_y)
            assert engine.getsad(current, reference, 16, 16, px, py,
                                 half_x, half_y) == expected

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), mb=st.sampled_from([(0, 0), (16, 16),
                                                            (48, 32)]),
           half_x=st.integers(0, 1), half_y=st.integers(0, 1),
           px=st.integers(0, 40), py=st.integers(0, 24))
    def test_property_engine_vs_listing1_reference(self, seed, mb, half_x,
                                                   half_y, px, py):
        current, reference = _frame_pair(seed)
        engine = FastSadEngine()
        mb_x, mb_y = mb
        expected = getsad_reference(current, reference, mb_x, mb_y, px, py,
                                    half_x, half_y)
        assert engine.getsad(current, reference, mb_x, mb_y, px, py,
                             half_x, half_y) == expected
        assert getsad(current, reference, mb_x, mb_y, px, py,
                      half_x, half_y) == expected

    def test_sad_many_matches_per_call(self):
        current, reference = _frame_pair(4)
        engine = FastSadEngine()
        height, width = reference.shape
        candidates = _all_mode_candidates(width, height, 5)
        batched = engine.sad_many(current, reference, 16, 16, candidates)
        for candidate, sad in zip(candidates, batched):
            assert sad == getsad(current, reference, 16, 16, *candidate)

    def test_sad_many_empty(self):
        current, reference = _frame_pair(6)
        assert FastSadEngine().sad_many(current, reference, 0, 0, []) == []

    def test_sad_map_matches_per_call(self):
        current, reference = _frame_pair(7)
        engine = FastSadEngine()
        sad_map = engine.sad_map(current, reference, 16, 16, 10, 20, 6, 14)
        for j, py in enumerate(range(6, 15)):
            for i, px in enumerate(range(10, 21)):
                assert sad_map[j, i] == getsad(current, reference, 16, 16,
                                               px, py)

    def test_sad_stream_matches_per_call(self):
        current, reference = _frame_pair(8)
        engine = FastSadEngine()
        height, width = reference.shape
        rows = []
        for mb_x in range(0, width - 15, 16):
            for mb_y in range(0, height - 15, 16):
                for candidate in _all_mode_candidates(width, height,
                                                      mb_x + mb_y, count=16):
                    rows.append((mb_x, mb_y) + candidate)
        arrays = [np.array(column) for column in zip(*rows)]
        sads = engine.sad_stream(current, reference, *arrays)
        assert len(rows) > STREAM_CHUNK  # exercises the chunked path
        for row, sad in zip(rows, sads):
            mb_x, mb_y, px, py, half_x, half_y = row
            assert sad == getsad(current, reference, mb_x, mb_y, px, py,
                                 half_x, half_y)

    def test_early_terminate_partials_match_scalar_model(self):
        current, reference = _frame_pair(9)
        engine = FastSadEngine()
        for best in (0, 100, 1000, 1 << 20):
            expected = getsad(current, reference, 16, 16, 5, 7, 1, 1,
                              best_so_far=best, early_terminate=True)
            assert engine.getsad(current, reference, 16, 16, 5, 7, 1, 1,
                                 best_so_far=best,
                                 early_terminate=True) == expected


class TestEngineValidation:
    def setup_method(self):
        self.current, self.reference = _frame_pair(10)
        self.engine = FastSadEngine()

    def test_bad_flags_rejected(self):
        for flags in [(2, 0), (0, 2), (-1, 0), (0, -1)]:
            with pytest.raises(CodecError):
                self.engine.getsad(self.current, self.reference, 0, 0,
                                   0, 0, *flags)
            with pytest.raises(CodecError):
                self.engine.sad_many(self.current, self.reference, 0, 0,
                                     [(0, 0) + flags])
            with pytest.raises(CodecError):
                self.engine.sad_stream(
                    self.current, self.reference, np.array([0]),
                    np.array([0]), np.array([0]), np.array([0]),
                    np.array([flags[0]]), np.array([flags[1]]))

    def test_out_of_bounds_rejected(self):
        height, width = self.reference.shape
        bad = [(-1, 0, 0, 0), (0, -1, 0, 0),
               (width - 15, 0, 0, 0), (0, height - 15, 0, 0),
               (width - 16, 0, 1, 0), (0, height - 16, 0, 1)]
        for candidate in bad:
            with pytest.raises(CodecError):
                self.engine.getsad(self.current, self.reference, 0, 0,
                                   *candidate)
            with pytest.raises(CodecError):
                self.engine.sad_many(self.current, self.reference, 0, 0,
                                     [candidate])

    def test_sad_map_window_validated(self):
        with pytest.raises(CodecError):
            self.engine.sad_map(self.current, self.reference, 0, 0,
                                0, self.reference.shape[1] - 15, 0, 0)

    def test_block_rows_requires_grid_alignment(self):
        with pytest.raises(CodecError):
            self.engine.block_rows(self.current, np.array([8]),
                                   np.array([0]))
        with pytest.raises(CodecError):
            self.engine.block_rows(self.current, np.array([0]),
                                   np.array([self.current.shape[0]]))


class TestEngineCaching:
    def test_plane_cache_hits_and_builds(self):
        current, reference = _frame_pair(11)
        engine = FastSadEngine()
        engine.getsad(current, reference, 0, 0, 0, 0)
        engine.getsad(current, reference, 0, 0, 1, 1)
        assert engine.plane_builds == 1
        assert engine.plane_hits == 1

    def test_identical_content_different_array_rebuilds(self):
        current, reference = _frame_pair(12)
        engine = FastSadEngine()
        engine.getsad(current, reference, 0, 0, 0, 0)
        engine.getsad(current, reference.copy(), 0, 0, 0, 0)
        assert engine.plane_builds == 2

    def test_lru_eviction(self):
        current, ref_a = _frame_pair(13)
        _, ref_b = _frame_pair(14)
        engine = FastSadEngine(max_cached_references=1)
        engine.planes(ref_a)
        engine.planes(ref_b)   # evicts ref_a
        engine.planes(ref_a)   # rebuild
        assert engine.plane_builds == 3

    def test_cache_needs_a_slot(self):
        with pytest.raises(CodecError):
            FastSadEngine(max_cached_references=0)

    def test_block_matches_slice_cast(self):
        current, _ = _frame_pair(15)
        engine = FastSadEngine()
        for mb_x, mb_y in [(0, 0), (16, 32), (48, 32),  # aligned, cached
                           (7, 9), (3, 32)]:            # unaligned fallback
            expected = current[mb_y:mb_y + 16, mb_x:mb_x + 16] \
                .astype(np.int16)
            got = engine.block(current, mb_x, mb_y)
            assert got.dtype == np.int16
            assert np.array_equal(got, expected), (mb_x, mb_y)

    def test_block_matrix_reused_per_frame(self):
        current, _ = _frame_pair(16)
        engine = FastSadEngine()
        first = engine.block_matrix(current)
        assert engine.block_matrix(current) is first


class TestEdgeMacroblockClamp:
    """Regression for the integer-search edge clamp (satellite bugfix).

    The clamp used to demand a 17x17 predictor for *integer* candidates,
    silently excluding every offset whose 16x16 block touches the plane's
    last row or column — for an edge macroblock that includes the zero
    offset and the true motion."""

    def test_full_search_finds_motion_at_bottom_right_macroblock(self):
        reference = np.random.default_rng(17).integers(
            0, 256, size=(64, 64), dtype=np.uint8)
        current = reference.copy()
        # the bottom-right macroblock moved down by 3: its best predictor
        # is at offset (0, -3), whose block ends exactly at the plane edge
        current[48:64, 48:64] = reference[45:61, 48:64]
        for fast in (True, False):
            estimator = MotionEstimator(strategy=FullSearch(4),
                                        use_fast_engine=fast)
            mv = estimator.estimate(current, reference, 48, 48,
                                    frame_index=0)
            assert (mv.dx, mv.dy) == (0, -6), f"fast={fast}"  # half-pel units
            assert mv.sad == 0

    def test_edge_macroblock_evaluates_zero_offset(self):
        current, reference = _frame_pair(18, height=64, width=64)
        trace = MeTrace()
        estimator = MotionEstimator(strategy=ThreeStepSearch(2))
        estimator.estimate(current, reference, 48, 48, frame_index=0,
                           trace=trace)
        zero = [inv for inv in trace
                if (inv.pred_x, inv.pred_y) == (48, 48)
                and not inv.is_refinement]
        assert zero, "the zero offset of an edge macroblock must be scored"


def _me_pass(strategy, frames, *, use_fast_engine, early_terminate=False):
    estimator = MotionEstimator(strategy=strategy,
                                use_fast_engine=use_fast_engine,
                                early_terminate=early_terminate)
    trace = MeTrace()
    vectors = []
    for index in range(1, len(frames)):
        current, reference = frames[index], frames[index - 1]
        height, width = current.shape
        for mb_y in range(0, height, 16):
            for mb_x in range(0, width, 16):
                mv = estimator.estimate(current, reference, mb_x, mb_y,
                                        frame_index=index, trace=trace)
                vectors.append((mb_x, mb_y, mv.dx, mv.dy, mv.sad))
    return trace, vectors


@pytest.fixture(scope="module")
def qcif_frames():
    sequence = synthetic_sequence(SyntheticSequenceConfig(frames=4,
                                                          seed=2002))
    return [frame.y for frame in sequence]


class TestTraceByteIdentity:
    @pytest.mark.parametrize("make_strategy", [
        lambda: ThreeStepSearch(2),
        lambda: FullSearch(6),
        lambda: DiamondSearch(8),
    ], ids=["three-step", "full", "diamond"])
    def test_engine_trace_identical_to_scalar_path(self, qcif_frames,
                                                   make_strategy):
        slow_trace, slow_vectors = _me_pass(make_strategy(), qcif_frames,
                                            use_fast_engine=False)
        fast_trace, fast_vectors = _me_pass(make_strategy(), qcif_frames,
                                            use_fast_engine=True)
        assert fast_vectors == slow_vectors
        assert fast_trace.signature() == slow_trace.signature()

    def test_early_termination_preserves_chosen_vectors(self, qcif_frames):
        exact_trace, exact_vectors = _me_pass(ThreeStepSearch(2), qcif_frames,
                                              use_fast_engine=True)
        for fast in (True, False):
            early_trace, early_vectors = _me_pass(
                ThreeStepSearch(2), qcif_frames, use_fast_engine=fast,
                early_terminate=True)
            # chosen motion vectors and their SADs are bit-identical ...
            assert early_vectors == exact_vectors, f"fast={fast}"
            # ... and the trace marks the same calls chosen, with winners'
            # SADs exact (only losers may be truncated, never below-best)
            assert len(early_trace) == len(exact_trace)
            for early, exact in zip(early_trace, exact_trace):
                assert early.chosen == exact.chosen
                assert early[:6] == exact[:6]  # coords + mode
                if early.chosen:
                    assert early.sad == exact.sad
                else:
                    # a truncated SAD is a prefix sum: a lower bound
                    assert early.sad <= exact.sad

    def test_strategies_return_offset_with_sad(self, qcif_frames):
        current, reference = qcif_frames[1], qcif_frames[0]
        height, width = current.shape
        estimator = MotionEstimator(strategy=ThreeStepSearch(2),
                                    refine_halfpel=False)
        mv = estimator.estimate(current, reference, 32, 32, frame_index=1)
        assert mv.sad == getsad(current, reference, 32, 32,
                                32 + mv.dx // 2, 32 + mv.dy // 2)

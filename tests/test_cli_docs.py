"""``docs/CLI.md`` must track the argparse tree, byte for byte.

The reference is generated (:mod:`repro.clidoc`), so the only way it can
be wrong is by not being regenerated after a CLI change — which is
exactly what these tests catch: the committed file must equal a fresh
rendering, and the rendering itself must be deterministic and complete
(every subcommand, every flag).
"""

import pathlib

import pytest

from repro.__main__ import build_parser
from repro.clidoc import render_cli_markdown

DOC = pathlib.Path(__file__).resolve().parent.parent / "docs" / "CLI.md"


def test_committed_cli_doc_matches_the_argparse_tree():
    rendered = render_cli_markdown(build_parser())
    committed = DOC.read_text(encoding="utf-8")
    assert committed == rendered, (
        "docs/CLI.md is stale — regenerate it with "
        "'PYTHONPATH=src python -m repro cli-docs'")


def test_rendering_is_deterministic():
    assert render_cli_markdown(build_parser()) == \
        render_cli_markdown(build_parser())


def test_every_subcommand_and_flag_is_documented():
    rendered = render_cli_markdown(build_parser())
    parser = build_parser()
    sub = next(action for action in parser._actions
               if hasattr(action, "choices") and action.choices)
    for name, choice in sub.choices.items():
        assert f"## `repro {name}`" in rendered, name
        for action in choice._actions:
            for flag in action.option_strings:
                if flag in ("-h", "--help"):
                    continue
                assert f"`{flag}`" in rendered, (name, flag)


def test_generated_header_warns_against_hand_edits():
    assert "GENERATED FILE" in DOC.read_text(encoding="utf-8")


def test_check_mode_detects_drift(tmp_path, capsys):
    from repro.__main__ import main
    stale = tmp_path / "CLI.md"
    stale.write_text("stale\n", encoding="utf-8")
    assert main(["cli-docs", "--check", "--output", str(stale)]) == 1
    assert main(["cli-docs", "--output", str(stale)]) == 0
    assert main(["cli-docs", "--check", "--output", str(stale)]) == 0

"""Report rendering, the shared workload cache, and the full runner."""

import pytest

from repro.core.scenarios import instruction_scenario, loop_scenario
from repro.experiments.report import ExperimentFigure, ExperimentTable, fmt, pct
from repro.experiments.runner import EXTENSION_RUNNERS, run_all
from repro.experiments.workload import ExperimentContext, get_context
from repro.rfu.loop_model import Bandwidth


class TestTableRendering:
    def _table(self):
        table = ExperimentTable("t9", "demo", ["name", "value"],
                                paper_reference="ref text",
                                notes="a note")
        table.add_row("alpha", 1)
        table.add_row("beta", 22222)
        return table

    def test_render_alignment(self):
        lines = self._table().render().splitlines()
        assert lines[0].startswith("t9: demo")
        header, separator, *rows = lines[1:]
        assert len(header) == len(separator)
        assert all(len(row) == len(header) for row in rows[:2])

    def test_render_includes_reference_and_notes(self):
        rendered = self._table().render()
        assert "paper: ref text" in rendered
        assert "note: a note" in rendered

    def test_cell_lookup(self):
        table = self._table()
        assert table.cell(1, "value") == "22222"
        with pytest.raises(ValueError):
            table.cell(0, "missing")

    def test_formatters(self):
        assert fmt(3.14159) == "3.14"
        assert fmt(3.14159, 3) == "3.142"
        assert pct(0.256) == "25.6%"
        assert pct(0.5, 0) == "50%"

    def test_figure_render(self):
        figure = ExperimentFigure("f9", "demo figure",
                                  paper_reference="some ref")
        figure.add("line one")
        figure.add()
        rendered = figure.render()
        assert "f9: demo figure" in rendered
        assert "line one" in rendered
        assert "paper: some ref" in rendered


class TestWorkloadCache:
    def test_context_cache_by_key(self):
        assert get_context(3, seed=999) is get_context(3, seed=999)
        assert get_context(3, seed=999) is not get_context(3, seed=998)

    def test_results_cached_per_scenario(self, small_context):
        scenario = instruction_scenario("orig")
        assert small_context.result(scenario) is small_context.result(scenario)

    def test_as_result_snapshot(self, small_context):
        small_context.result(loop_scenario(Bandwidth.B1X32))
        snapshot = small_context.as_result()
        assert "loop_1x32_b1" in snapshot.results
        assert snapshot.non_me_cycles == small_context.non_me_cycles()

    def test_me_fraction_uses_scenario_cycles(self, small_context):
        fast = small_context.me_fraction(
            loop_scenario(Bandwidth.B1X32, line_buffer_b=True))
        slow = small_context.me_fraction(instruction_scenario("orig"))
        assert fast < slow


class TestRunner:
    def test_run_all_contains_every_artifact(self, small_context):
        report = run_all(context=small_context, extensions=True)
        for artifact in ("profile", "table1", "table2", "table3", "table4",
                         "table5", "table6", "table7", "figure1", "figure2",
                         "figure3", "figure4", "futurework", "extraction",
                         "context-sched", "ablation-reconfig",
                         "ablation-lbb", "ablation-bus"):
            assert artifact in report, f"missing {artifact}"

    def test_run_all_without_extensions(self, small_context):
        report = run_all(context=small_context, extensions=False)
        assert "table7" in report
        assert "futurework" not in report

    def test_header_describes_the_workload(self, small_context):
        report = run_all(context=small_context, extensions=False)
        first_line = report.splitlines()[0]
        assert "QCIF" in first_line
        assert "GetSad calls" in first_line

    def test_every_extension_runner_accepts_the_context(self, small_context):
        for name, runner in EXTENSION_RUNNERS:
            table = runner(small_context)
            assert table.rows, name

"""Main memory, caches, prefetch buffer and the bus."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MemoryError_
from repro.memory import Cache, MainMemory, MemoryBus, PrefetchBuffer


class TestMainMemory:
    def test_word_roundtrip_little_endian(self):
        memory = MainMemory(1024)
        memory.store_word(8, 0x11223344)
        assert memory.load_word(8) == 0x11223344
        assert memory.load_byte(8) == 0x44   # LSB at the low address
        assert memory.load_byte(11) == 0x11

    def test_byte_then_word(self):
        memory = MainMemory(64)
        for i, value in enumerate([1, 2, 3, 4]):
            memory.store_byte(4 + i, value)
        assert memory.load_word(4) == 0x04030201

    def test_unaligned_word_rejected(self):
        memory = MainMemory(64)
        with pytest.raises(MemoryError_):
            memory.load_word(2)
        with pytest.raises(MemoryError_):
            memory.store_word(7, 0)

    def test_out_of_bounds_rejected(self):
        memory = MainMemory(64)
        with pytest.raises(MemoryError_):
            memory.load_word(64)
        with pytest.raises(MemoryError_):
            memory.load_byte(-1)

    def test_bad_size_rejected(self):
        with pytest.raises(MemoryError_):
            MainMemory(10)
        with pytest.raises(MemoryError_):
            MainMemory(0)

    def test_block_io(self):
        memory = MainMemory(256)
        payload = np.arange(16, dtype=np.uint8)
        memory.write_block(32, payload)
        assert np.array_equal(memory.read_block(32, 16), payload)

    @given(st.integers(0, 60), st.integers(0, 0xFFFFFFFF))
    def test_word_store_load_roundtrip(self, offset, value):
        memory = MainMemory(256)
        addr = offset * 4 % 252
        memory.store_word(addr, value)
        assert memory.load_word(addr) == value


class TestCacheGeometry:
    def test_paper_dcache_shape(self):
        dcache = Cache(32 * 1024, 32, 4, "D$")
        assert dcache.num_sets == 256

    def test_paper_icache_shape(self):
        icache = Cache(128 * 1024, 64, 1, "I$")
        assert icache.num_sets == 2048

    def test_bad_geometry_rejected(self):
        with pytest.raises(MemoryError_):
            Cache(1000, 32, 4)
        with pytest.raises(MemoryError_):
            Cache(1024, 24, 1)  # not a power of two

    def test_line_address(self):
        cache = Cache(1024, 32, 2)
        assert cache.line_address(0) == 0
        assert cache.line_address(31) == 0
        assert cache.line_address(32) == 32

    def test_lines_for_range(self):
        cache = Cache(1024, 32, 2)
        assert cache.lines_for_range(30, 4) == [0, 32]
        assert cache.lines_for_range(0, 32) == [0]
        assert cache.lines_for_range(100, 1) == [96]


class TestCacheBehaviour:
    def test_miss_then_fill_then_hit(self):
        cache = Cache(1024, 32, 2)
        assert not cache.access(40)
        cache.fill(40)
        assert cache.access(40)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_contains_has_no_side_effects(self):
        cache = Cache(1024, 32, 2)
        cache.fill(0)
        before = (cache.stats.hits, cache.stats.misses)
        assert cache.contains(0)
        assert not cache.contains(32)
        assert (cache.stats.hits, cache.stats.misses) == before

    def test_lru_eviction_within_set(self):
        cache = Cache(128, 32, 2)  # 2 sets, 2 ways
        set_stride = cache.num_sets * 32
        a, b, c = 0, set_stride, 2 * set_stride  # same set
        cache.fill(a)
        cache.fill(b)
        cache.access(a)   # a is now MRU
        cache.fill(c)     # evicts b (LRU)
        assert cache.contains(a)
        assert not cache.contains(b)
        assert cache.contains(c)
        assert cache.stats.evictions == 1

    def test_direct_mapped_conflicts(self):
        cache = Cache(128, 32, 1)
        set_stride = cache.num_sets * 32
        cache.fill(0)
        cache.fill(set_stride)
        assert not cache.contains(0)

    def test_flush(self):
        cache = Cache(1024, 32, 2)
        cache.fill(0)
        cache.flush()
        assert not cache.contains(0)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 63), min_size=1, max_size=200))
    def test_matches_reference_lru_model(self, accesses):
        """The cache must agree with a brute-force LRU reference model."""
        cache = Cache(512, 32, 2)  # 8 sets, 2 ways
        reference = {}  # set index -> list of lines, MRU last
        for slot in accesses:
            addr = slot * 32
            set_index = (addr // 32) % cache.num_sets
            ways = reference.setdefault(set_index, [])
            expected_hit = addr in ways
            assert cache.access(addr) == expected_hit
            if expected_hit:
                ways.remove(addr)
                ways.append(addr)
            else:
                cache.fill(addr)
                if len(ways) >= 2:
                    ways.pop(0)
                ways.append(addr)


class TestBus:
    def test_serialises_requests(self):
        bus = MemoryBus(latency=25, service_interval=4)
        first = bus.request(0)
        second = bus.request(0)
        assert first == 25
        assert second == 29

    def test_idle_bus_resets_spacing(self):
        bus = MemoryBus(latency=25, service_interval=4)
        bus.request(0)
        later = bus.request(100)
        assert later == 125

    def test_reset(self):
        bus = MemoryBus()
        bus.request(0)
        bus.reset()
        assert bus.fills == 0
        assert bus.request(0) == bus.latency


class TestPrefetchBuffer:
    def _buffer(self, entries=4):
        return PrefetchBuffer(entries, MemoryBus(latency=20,
                                                 service_interval=2))

    def test_issue_and_lookup(self):
        buffer = self._buffer()
        assert buffer.issue(64, 0)
        assert buffer.lookup(64, 100) == 20
        assert buffer.stats.useful == 1

    def test_late_lookup_counted(self):
        buffer = self._buffer()
        buffer.issue(64, 0)
        ready = buffer.lookup(64, 5)
        assert ready == 20
        assert buffer.stats.late == 1

    def test_lookup_pops_entry(self):
        buffer = self._buffer()
        buffer.issue(64, 0)
        assert buffer.lookup(64, 50) is not None
        assert buffer.lookup(64, 50) is None

    def test_duplicate_suppressed(self):
        buffer = self._buffer()
        assert buffer.issue(64, 0)
        assert not buffer.issue(64, 0)
        assert buffer.stats.duplicates == 1

    def test_capacity_drops(self):
        buffer = self._buffer(entries=2)
        assert buffer.issue(0, 0)
        assert buffer.issue(32, 0)
        assert not buffer.issue(64, 0)
        assert buffer.stats.dropped == 1

    def test_capacity_frees_after_arrival(self):
        buffer = self._buffer(entries=2)
        buffer.issue(0, 0)
        buffer.issue(32, 0)
        # both have arrived by cycle 30: new prefetches fit again
        assert buffer.issue(64, 40)

    def test_issue_tracked_returns_arrival(self):
        buffer = self._buffer()
        arrival = buffer.issue_tracked(64, 0)
        assert arrival == 20
        # deduplication adopts the same arrival
        assert buffer.issue_tracked(64, 3) == 20

"""Diamond search strategy."""

import numpy as np
import pytest

from repro.codec.motion import DiamondSearch, FullSearch, MotionEstimator
from repro.codec.tracer import MeTrace
from repro.errors import CodecError
from tests.test_motion import _planted_pair


class TestDiamondSearch:
    def test_finds_planted_motion_on_smooth_content(self):
        current, reference = _planted_pair(3, -2, smooth=True)
        estimator = MotionEstimator(DiamondSearch(), refine_halfpel=False)
        mv = estimator.estimate(current, reference, 24, 24, 1)
        assert (mv.dx, mv.dy) == (6, -4)
        assert mv.sad == 0

    def test_zero_motion_terminates_immediately(self):
        current, reference = _planted_pair(0, 0, smooth=True)
        trace = MeTrace()
        MotionEstimator(DiamondSearch(), refine_halfpel=False).estimate(
            reference, reference, 24, 24, 1, trace)
        # one large diamond round + the small refinement + center
        assert len(trace) <= 13

    def test_cheaper_than_full_search(self):
        current, reference = _planted_pair(2, 2, smooth=True)
        diamond_trace, full_trace = MeTrace(), MeTrace()
        MotionEstimator(DiamondSearch(), refine_halfpel=False).estimate(
            current, reference, 24, 24, 1, diamond_trace)
        MotionEstimator(FullSearch(6), refine_halfpel=False).estimate(
            current, reference, 24, 24, 1, full_trace)
        assert len(diamond_trace) < len(full_trace)

    def test_never_revisits_a_candidate(self):
        current, reference = _planted_pair(4, 2, smooth=True)
        trace = MeTrace()
        MotionEstimator(DiamondSearch(), refine_halfpel=False).estimate(
            current, reference, 24, 24, 1, trace)
        points = [(inv.pred_x, inv.pred_y) for inv in trace]
        assert len(points) == len(set(points))

    def test_bad_rounds_rejected(self):
        with pytest.raises(CodecError):
            DiamondSearch(0)

    def test_works_in_the_encoder(self, tiny_sequence):
        from repro.codec.encoder import EncoderConfig, Mpeg4Encoder
        report = Mpeg4Encoder(EncoderConfig(strategy=DiamondSearch())) \
            .encode(tiny_sequence[:2])
        assert report.frame_stats[1].getsad_calls > 0
        assert report.frame_stats[1].psnr_y > 30

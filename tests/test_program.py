"""IR structure, dependence graph, builder."""

import pytest

from repro.errors import IsaError
from repro.isa import Operation, vreg
from repro.program import (
    BasicBlock,
    KernelBuilder,
    Program,
    build_dependence_graph,
)
from repro.program.builder import straightline_program
from repro.program.scheduler import default_latency


def _edges(graph):
    return {(src, dst): dist
            for src, lst in graph.succs.items()
            for dst, dist in lst}


class TestBasicBlock:
    def test_append_after_branch_fails(self):
        block = BasicBlock("b")
        block.append(Operation("goto", label="b"))
        with pytest.raises(IsaError):
            block.append(Operation("movi", dest=vreg(), imm=0))

    def test_terminated_and_branch(self):
        block = BasicBlock("b")
        assert not block.terminated
        assert block.branch is None
        op = block.append(Operation("goto", label="b"))
        assert block.terminated
        assert block.branch is op

    def test_def_use_sets(self):
        a, b, c = vreg("a"), vreg("b"), vreg("c")
        block = BasicBlock("b", [Operation("add", dest=c, srcs=(a, b))])
        assert block.defined_registers() == {c}
        assert block.used_registers() == {a, b}


class TestProgramValidation:
    def test_duplicate_labels_rejected(self):
        program = Program("p", [BasicBlock("x"), BasicBlock("x")])
        with pytest.raises(IsaError):
            program.validate()

    def test_unresolved_branch_rejected(self):
        block = BasicBlock("entry")
        block.append(Operation("goto", label="nowhere"))
        with pytest.raises(IsaError):
            Program("p", [block]).validate()

    def test_branch_must_be_last(self):
        block = BasicBlock("entry")
        block.ops = [Operation("goto", label="entry"),
                     Operation("movi", dest=vreg(), imm=0)]
        with pytest.raises(IsaError):
            Program("p", [block]).validate()

    def test_block_lookup(self):
        program = Program("p", [BasicBlock("a"), BasicBlock("b")])
        assert program.block("b").label == "b"
        with pytest.raises(IsaError):
            program.block("c")


class TestDependenceGraph:
    def test_raw_edge_carries_latency(self):
        a = vreg("a")
        dst = vreg("d")
        block = BasicBlock("b", [
            Operation("ldw", dest=a, srcs=(vreg("p"),), imm=0),
            Operation("addi", dest=dst, srcs=(a,), imm=1),
        ])
        graph = build_dependence_graph(block, default_latency)
        assert _edges(graph)[(0, 1)] == 3  # load latency

    def test_waw_edge(self):
        a = vreg("a")
        block = BasicBlock("b", [
            Operation("movi", dest=a, imm=1),
            Operation("movi", dest=a, imm=2),
        ])
        graph = build_dependence_graph(block, default_latency)
        assert _edges(graph)[(0, 1)] == 1

    def test_war_edge_is_zero_distance(self):
        a, b = vreg("a"), vreg("b")
        block = BasicBlock("b", [
            Operation("addi", dest=b, srcs=(a,), imm=0),  # reads a
            Operation("movi", dest=a, imm=2),             # then writes a
        ])
        graph = build_dependence_graph(block, default_latency)
        assert _edges(graph)[(0, 1)] == 0

    def test_loads_do_not_order_loads(self):
        p = vreg("p")
        block = BasicBlock("b", [
            Operation("ldw", dest=vreg(), srcs=(p,), imm=0, mem_tag="m"),
            Operation("ldw", dest=vreg(), srcs=(p,), imm=4, mem_tag="m"),
        ])
        graph = build_dependence_graph(block, default_latency)
        assert (0, 1) not in _edges(graph)

    def test_store_orders_same_tag_load(self):
        p, v = vreg("p"), vreg("v")
        block = BasicBlock("b", [
            Operation("stw", srcs=(v, p), imm=0, mem_tag="m"),
            Operation("ldw", dest=vreg(), srcs=(p,), imm=0, mem_tag="m"),
        ])
        graph = build_dependence_graph(block, default_latency)
        assert _edges(graph)[(0, 1)] == 1

    def test_different_tags_independent(self):
        p, v = vreg("p"), vreg("v")
        block = BasicBlock("b", [
            Operation("stw", srcs=(v, p), imm=0, mem_tag="a"),
            Operation("ldw", dest=vreg(), srcs=(p,), imm=0, mem_tag="b"),
        ])
        graph = build_dependence_graph(block, default_latency)
        assert (0, 1) not in _edges(graph)

    def test_rfu_protocol_order_per_config(self):
        block = BasicBlock("b", [
            Operation("rfusend", srcs=(vreg(),), imm=3),
            Operation("rfuexec", dest=vreg(), srcs=(), imm=3),
            Operation("rfuexec", dest=vreg(), srcs=(), imm=4),
        ])
        graph = build_dependence_graph(block, default_latency)
        edges = _edges(graph)
        assert (0, 1) in edges      # same configuration: ordered
        assert (1, 2) not in edges  # different configuration: free

    def test_branch_scheduled_last(self):
        cond = vreg("c", is_branch=True)
        block = BasicBlock("b", [
            Operation("movi", dest=vreg(), imm=0),
            Operation("br", srcs=(cond,), imm=0, label="b"),
        ])
        graph = build_dependence_graph(block, default_latency)
        assert (0, 1) in _edges(graph)

    def test_critical_path_heights(self):
        a, b = vreg("a"), vreg("b")
        block = BasicBlock("b", [
            Operation("movi", dest=a, imm=1),
            Operation("addi", dest=b, srcs=(a,), imm=1),
        ])
        graph = build_dependence_graph(block, default_latency)
        heights = graph.critical_path_lengths(default_latency)
        assert heights[0] > heights[1]


class TestKernelBuilder:
    def test_emit_outside_block_fails(self):
        kb = KernelBuilder("k")
        with pytest.raises(IsaError):
            kb.emit("movi", imm=0)

    def test_duplicate_block_label_fails(self):
        kb = KernelBuilder("k")
        with kb.block("a"):
            pass
        with pytest.raises(IsaError):
            with kb.block("a"):
                pass

    def test_const_is_cached_per_block(self):
        kb = KernelBuilder("k")
        with kb.block("a"):
            first = kb.const(7)
            second = kb.const(7)
            third = kb.const(8)
        assert first is second
        assert third is not first

    def test_params_are_persistent(self):
        kb = KernelBuilder("k")
        p = kb.param("p")
        assert p in kb.program.persistent
        assert kb.program.params == [p]

    def test_align_window_zero_shift_is_identity(self):
        kb = KernelBuilder("k")
        with kb.block("a"):
            word = kb.emit("movi", imm=0)
            assert kb.align_window(word, word, 0) is word

    def test_counted_loop_emits_backedge(self):
        kb = KernelBuilder("k")
        counter = kb.persistent_reg("n")
        with kb.block("init"):
            kb.emit("movi", dest=counter, imm=3)
        with kb.counted_loop("loop", counter):
            kb.emit("movi", imm=1)
        program = kb.finish()
        loop = program.block("loop")
        assert loop.terminated
        assert loop.branch.label == "loop"

    def test_straightline_program(self):
        program = straightline_program("s", [
            Operation("movi", dest=vreg(), imm=1)])
        assert len(program.blocks) == 1
        program.validate()

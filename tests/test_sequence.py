"""The synthetic QCIF sequence generator."""

import numpy as np
import pytest

from repro.codec.sequence import SyntheticSequenceConfig, synthetic_sequence
from repro.errors import CodecError


class TestDeterminism:
    def test_same_seed_same_frames(self):
        a = synthetic_sequence(SyntheticSequenceConfig(frames=3, seed=11))
        b = synthetic_sequence(SyntheticSequenceConfig(frames=3, seed=11))
        for fa, fb in zip(a, b):
            assert np.array_equal(fa.y, fb.y)

    def test_different_seed_differs(self):
        a = synthetic_sequence(SyntheticSequenceConfig(frames=2, seed=11))
        b = synthetic_sequence(SyntheticSequenceConfig(frames=2, seed=12))
        assert not np.array_equal(a[0].y, b[0].y)


class TestContent:
    def test_shapes_and_count(self, tiny_sequence):
        assert len(tiny_sequence) == 3
        for frame in tiny_sequence:
            assert frame.y.shape == (144, 176)
            assert frame.u.shape == (72, 88)

    def test_frames_actually_move(self, tiny_sequence):
        # consecutive frames must differ (motion + noise)
        diff = np.abs(tiny_sequence[0].y.astype(int)
                      - tiny_sequence[1].y.astype(int))
        assert diff.mean() > 0.5

    def test_texture_present(self, tiny_sequence):
        # a flat frame would defeat motion estimation
        assert tiny_sequence[0].y.std() > 10

    def test_values_span_a_real_range(self, tiny_sequence):
        luma = tiny_sequence[0].y
        assert luma.min() >= 0 and luma.max() <= 255
        assert luma.max() - luma.min() > 60

    def test_motion_is_trackable(self, tiny_sequence):
        """The background pan must be recoverable by block matching: the
        best offset for a central block should beat the zero offset."""
        cur, ref = tiny_sequence[1].y, tiny_sequence[0].y
        block = cur[64:80, 80:96].astype(int)
        zero_sad = np.abs(block - ref[64:80, 80:96].astype(int)).sum()
        best = min(
            np.abs(block - ref[64 + dy:80 + dy, 80 + dx:96 + dx].astype(int)).sum()
            for dy in range(-2, 3) for dx in range(-2, 3))
        assert best <= zero_sad

    def test_zero_frames_rejected(self):
        with pytest.raises(CodecError):
            synthetic_sequence(SyntheticSequenceConfig(frames=0))

"""Columnar replay engine: cycle-exactness against the legacy walk.

The contract under test: for every scenario the repo can express —
the full Tables 1-7 catalogue, ablation variants (bank counts, bus
timings, prefetch-buffer sizes) and randomized synthetic traces — a
columnar :class:`TraceReplayer` produces a :class:`MeTimingResult` equal
field-for-field to the legacy object-model walk.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec.tracer import MeInvocation, MeTrace
from repro.core.scenarios import (
    all_scenarios,
    instruction_scenario,
    loop_scenario,
)
from repro.core.timing import (
    TraceReplayer,
    default_replay_engine,
    set_default_replay_engine,
)
from repro.errors import ExperimentError
from repro.memory import MemoryTimings
from repro.rfu.loop_model import Bandwidth, InterpMode


def _invocation(frame=1, mb_x=16, mb_y=16, pred_x=14, pred_y=15,
                mode=InterpMode.FULL, sad=100):
    return MeInvocation(frame=frame, mb_x=mb_x, mb_y=mb_y, pred_x=pred_x,
                        pred_y=pred_y, mode=mode, sad=sad,
                        is_refinement=False)


def _trace(invocations):
    trace = MeTrace()
    for invocation in invocations:
        trace.append(invocation)
    return trace


def _assert_engines_agree(trace, scenarios, timings=None):
    """Fresh replayer per engine (independent caches), equal results."""
    legacy = TraceReplayer(trace, timings=timings, engine="legacy")
    columnar = TraceReplayer(trace, timings=timings, engine="columnar")
    for scenario in scenarios:
        assert columnar.replay(scenario) == legacy.replay(scenario), \
            f"engines disagree on {scenario.name}"


class TestCatalogueDifferential:
    """Every tables 1-7 scenario, on the real 3-frame workload trace."""

    def test_full_catalogue_identical(self, small_context):
        trace = small_context.exploration.encoder_report.trace
        _assert_engines_agree(trace, all_scenarios())

    def test_ablation_variants_identical(self, small_context):
        trace = small_context.exploration.encoder_report.trace
        scenarios = [
            loop_scenario(Bandwidth.B1X32, beta=1.0, line_buffer_b=True,
                          lbb_banks=1),
            loop_scenario(Bandwidth.B1X32, beta=1.0, line_buffer_b=True,
                          lbb_banks=2),
            loop_scenario(Bandwidth.B2X64, beta=5.0, line_buffer_b=True,
                          lbb_banks=8),
            dataclasses.replace(
                loop_scenario(Bandwidth.B1X32, beta=1.0),
                name="loop_small_pf", prefetch_entries=4),
        ]
        _assert_engines_agree(trace, scenarios)

    def test_custom_bus_timings_identical(self, small_context):
        trace = small_context.exploration.encoder_report.trace
        timings = MemoryTimings(bus_latency=60, bus_service_interval=16)
        scenarios = [instruction_scenario("orig"),
                     loop_scenario(Bandwidth.B1X32, beta=1.0),
                     loop_scenario(Bandwidth.B1X32, beta=1.0,
                                   line_buffer_b=True)]
        _assert_engines_agree(trace, scenarios, timings=timings)

    def test_tiny_prefetch_buffer_lbb_fallback_stays_exact(self,
                                                           small_context):
        """A starved prefetch buffer drops LBB prefetches; the columnar
        engine must detect that, fall back, and still match."""
        trace = small_context.exploration.encoder_report.trace
        scenario = dataclasses.replace(
            loop_scenario(Bandwidth.B1X32, beta=1.0, line_buffer_b=True),
            name="loop_lbb_starved", prefetch_entries=1)
        _assert_engines_agree(trace, [scenario])


class TestEdgeTraces:
    def test_empty_trace_raises_on_both_engines(self):
        for engine in ("legacy", "columnar"):
            replayer = TraceReplayer(MeTrace(), engine=engine)
            with pytest.raises(ExperimentError):
                replayer.replay(instruction_scenario("orig"))

    def test_single_invocation_identical(self):
        trace = _trace([_invocation()])
        _assert_engines_agree(
            trace,
            [instruction_scenario("orig"),
             loop_scenario(Bandwidth.B1X32, beta=1.0),
             loop_scenario(Bandwidth.B1X32, beta=1.0, line_buffer_b=True)])

    def test_single_invocation_groups(self):
        """Each invocation its own macroblock group (group size 1)."""
        trace = _trace([_invocation(mb_x=16 * i, pred_x=16 * i + (i % 4),
                                    mode=InterpMode(i % 4))
                        for i in range(6)])
        _assert_engines_agree(
            trace,
            [loop_scenario(Bandwidth.B1X64, beta=5.0),
             loop_scenario(Bandwidth.B1X32, beta=1.0, line_buffer_b=True)])


_random_invocations = st.lists(
    st.tuples(
        st.integers(1, 2),             # frame
        st.integers(0, 8),             # macroblock column (x16)
        st.integers(0, 5),             # macroblock row (x16)
        st.integers(-2, 130),          # pred_x (includes negatives)
        st.integers(-2, 130),          # pred_y
        st.integers(0, 3),             # mode
    ),
    min_size=1, max_size=40)


class TestRandomizedTraces:
    @settings(max_examples=25, deadline=None)
    @given(_random_invocations)
    def test_random_traces_identical(self, rows):
        rows.sort(key=lambda row: (row[0], row[1], row[2]))
        trace = _trace([
            _invocation(frame=frame, mb_x=16 * mbx, mb_y=16 * mby,
                        pred_x=px, pred_y=py, mode=InterpMode(mode))
            for frame, mbx, mby, px, py, mode in rows])
        _assert_engines_agree(
            trace,
            [instruction_scenario("a3"),
             loop_scenario(Bandwidth.B1X32, beta=1.0),
             loop_scenario(Bandwidth.B2X64, beta=5.0),
             loop_scenario(Bandwidth.B1X32, beta=1.0,
                           line_buffer_b=True)])


class TestStallCacheKeying:
    def test_cache_keys_on_memory_relevant_fields(self, small_context):
        """Two instruction scenarios with different prefetch-buffer sizes
        must not share one cached stall replay (the pre-columnar cache was
        a single unkeyed tuple)."""
        trace = small_context.exploration.encoder_report.trace
        replayer = TraceReplayer(trace, engine="columnar")
        base = instruction_scenario("orig")
        bigger = dataclasses.replace(base, name="orig_pf64",
                                     prefetch_entries=64)
        first = replayer._replay_instruction_stalls(base)
        second = replayer._replay_instruction_stalls(bigger)
        assert len(replayer._instruction_stalls) == 2
        assert first != second  # a larger buffer changes stall behaviour
        # and each key returns its own cached value on re-request
        assert replayer._replay_instruction_stalls(base) == first

    def test_legacy_engine_keys_identically(self, small_context):
        trace = small_context.exploration.encoder_report.trace
        legacy = TraceReplayer(trace, engine="legacy")
        base = instruction_scenario("orig")
        bigger = dataclasses.replace(base, name="orig_pf64",
                                     prefetch_entries=64)
        assert legacy._replay_instruction_stalls(base) \
            != legacy._replay_instruction_stalls(bigger)


class TestEngineSelection:
    def test_default_engine_is_columnar(self):
        assert default_replay_engine() == "columnar"

    def test_set_default_engine_routes_new_replayers(self):
        try:
            set_default_replay_engine("legacy")
            assert TraceReplayer(_trace([_invocation()])).engine_name \
                == "legacy"
        finally:
            set_default_replay_engine("columnar")
        assert TraceReplayer(_trace([_invocation()])).engine_name \
            == "columnar"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ExperimentError):
            set_default_replay_engine("quantum")
        with pytest.raises(ExperimentError):
            TraceReplayer(_trace([_invocation()]), engine="quantum")


class TestPhaseObservability:
    def test_phases_populated_after_replay(self, small_context):
        trace = small_context.exploration.encoder_report.trace
        replayer = TraceReplayer(trace, engine="columnar")
        replayer.replay(instruction_scenario("orig"))
        replayer.replay(loop_scenario(Bandwidth.B1X32, beta=1.0))
        breakdown = replayer.phase_breakdown()
        assert set(breakdown) == {"compile", "static", "stall", "loop"}
        assert breakdown["compile"]["calls"] >= 1
        assert breakdown["static"]["cycles"] > 0
        assert breakdown["stall"]["cycles"] > 0
        assert breakdown["loop"]["cycles"] > 0

    def test_delta_and_merge_round_trip(self, small_context):
        trace = small_context.exploration.encoder_report.trace
        replayer = TraceReplayer(trace, engine="columnar")
        replayer.replay(instruction_scenario("orig"))
        before = replayer.phases_snapshot()
        replayer.replay(loop_scenario(Bandwidth.B1X32, beta=1.0))
        delta = replayer.phases_delta(before)
        assert delta["loop"]["calls"] == 1
        assert delta["static"]["calls"] == 0
        replayer.merge_phases(delta)  # double-apply on purpose
        assert replayer.phases["loop"]["calls"] == 2


class TestTraceNpzRoundTrip:
    def test_round_trip_preserves_signature(self, tmp_path, small_context):
        trace = small_context.exploration.encoder_report.trace
        path = tmp_path / "trace.npz"
        trace.save_npz(path)
        loaded = MeTrace.load_npz(path)
        assert len(loaded) == len(trace)
        assert loaded.signature() == trace.signature()
        assert isinstance(loaded.invocations[0].mode, InterpMode)

    def test_round_trip_preserves_flags(self, tmp_path):
        trace = _trace([_invocation()])
        trace.append(MeInvocation(frame=2, mb_x=0, mb_y=0, pred_x=-1,
                                  pred_y=3, mode=InterpMode.HV, sad=7,
                                  is_refinement=True, chosen=True))
        path = tmp_path / "trace.npz"
        trace.save_npz(path)
        loaded = MeTrace.load_npz(path)
        assert loaded.signature() == trace.signature()
        assert loaded.invocations[1].chosen is True
        assert loaded.invocations[1].is_refinement is True
        assert loaded.invocations[1].pred_x == -1


class TestEntropyVectorization:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(-300, 300), min_size=0, max_size=64))
    def test_run_level_pairs_match_scalar(self, values):
        from repro.codec.entropy import run_level_pairs, \
            run_level_pairs_scalar
        block = np.array(values, dtype=np.int64)
        assert run_level_pairs(block) == run_level_pairs_scalar(block)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(-300, 300), min_size=64, max_size=64))
    def test_block_bits_match_scalar(self, values):
        from repro.codec.entropy import block_bits, block_bits_scalar
        block = np.array(values, dtype=np.int64).reshape(8, 8)
        assert block_bits(block) == block_bits_scalar(block)

    def test_coded_symbols_counts_nonzeros(self):
        from repro.codec.entropy import coded_symbols
        block = np.zeros((8, 8), dtype=np.int64)
        assert coded_symbols(block) == 0
        block[0, 0] = 5
        block[7, 7] = -2
        assert coded_symbols(block) == 2

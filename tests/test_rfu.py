"""RFU configurations, runtime unit, technology scaling, custom ops."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RfuError
from repro.rfu import (
    A1_COMBINE,
    A1_HAVG,
    DIAG4,
    DIAG16,
    ConfigRegistry,
    RfuConfiguration,
    RfuUnit,
    scaled_compute_depth,
    scaled_latency,
    standard_registry,
)
from repro.rfu.custom_ops import diag_interpolate
from repro.utils.bitops import pack_bytes, unpack_bytes, words_to_bytes

bytes_lists = st.lists(st.integers(0, 255), min_size=4, max_size=4)


class TestScaling:
    def test_identity_at_beta_1(self):
        assert scaled_compute_depth(3, 1.0) == 3

    def test_paper_plus_12_cycles(self):
        # 3 computational stages at beta=5 -> 15: the fixed +12 of Table 3
        assert scaled_compute_depth(3, 5.0) - scaled_compute_depth(3, 1.0) == 12

    def test_read_write_stages_unscaled(self):
        assert scaled_latency(2, 3, 1, 5.0) == 2 + 15 + 1

    def test_beta_below_one_rejected(self):
        with pytest.raises(RfuError):
            scaled_compute_depth(3, 0.5)


class TestRegistry:
    def test_duplicate_id_rejected(self):
        registry = ConfigRegistry()
        config = RfuConfiguration(1, "x", lambda s, o: 0)
        registry.register(config)
        with pytest.raises(RfuError):
            registry.register(RfuConfiguration(1, "y", lambda s, o: 0))

    def test_unknown_id_rejected(self):
        with pytest.raises(RfuError):
            ConfigRegistry().get(99)

    def test_standard_registry_contents(self):
        registry = standard_registry()
        assert all(cid in registry
                   for cid in (A1_HAVG, A1_COMBINE, DIAG4, DIAG16))
        assert registry.get(A1_HAVG).issue_per_cycle == 4
        assert registry.get(DIAG4).issue_per_cycle == 1

    def test_configuration_latency_scaling(self):
        config = RfuConfiguration(9, "piped", lambda s, o: 0,
                                  base_latency=6, read_stages=1,
                                  compute_depth=4, write_stages=1)
        assert config.latency(1.0) == 6
        assert config.latency(5.0) == 6 + 16  # compute 4 -> 20


class TestUnitProtocol:
    def test_exec_without_config_fails(self):
        unit = RfuUnit(standard_registry())
        with pytest.raises(RfuError):
            unit.execute(99, ())

    def test_send_to_sendless_config_fails(self):
        unit = RfuUnit(standard_registry())
        with pytest.raises(RfuError):
            unit.send(A1_HAVG, (1, 2))

    def test_init_sets_alignment_state(self):
        unit = RfuUnit(standard_registry())
        unit.init(DIAG4, (2,))
        assert unit.state_of(unit.registry.get(DIAG4))["shift"] == 2

    def test_init_rejects_bad_alignment(self):
        unit = RfuUnit(standard_registry())
        with pytest.raises(RfuError):
            unit.init(DIAG4, (5,))

    def test_context_lru_and_penalty(self):
        unit = RfuUnit(standard_registry(), reconfiguration_penalty=10,
                       active_contexts=2)
        assert unit.init(A1_HAVG) == 10      # cold
        assert unit.init(A1_HAVG) == 0       # resident
        unit.init(A1_COMBINE)                # second context
        unit.init(DIAG4, (0,))               # evicts A1_HAVG
        assert unit.init(A1_HAVG) == 10      # cold again
        assert unit.stats.reconfigurations == 4

    def test_prefetch_without_engine_fails(self):
        unit = RfuUnit(standard_registry())
        with pytest.raises(RfuError):
            unit.prefetch((0, 0, 0, 0), 0)

    def test_reset_clears_state(self):
        unit = RfuUnit(standard_registry())
        unit.init(DIAG4, (1,))
        unit.reset()
        assert unit.state_of(unit.registry.get(DIAG4)) == {}
        assert unit.stats.inits == 0


class TestA1Semantics:
    @given(bytes_lists, bytes_lists, bytes_lists, bytes_lists)
    def test_stash_and_combine_is_exact_diagonal(self, t0, t1, b0, b1):
        unit = RfuUnit(standard_registry())
        h_top, _ = unit.execute(A1_HAVG, (pack_bytes(t0), pack_bytes(t1)))
        h_bot, _ = unit.execute(A1_HAVG, (pack_bytes(b0), pack_bytes(b1)))
        combined, latency = unit.execute(A1_COMBINE, (h_top, h_bot))
        expected = [(w + x + y + z + 2) >> 2
                    for w, x, y, z in zip(t0, t1, b0, b1)]
        assert unpack_bytes(combined) == expected
        assert latency == 1

    def test_combine_without_havg_fails(self):
        unit = RfuUnit(standard_registry())
        with pytest.raises(RfuError):
            unit.execute(A1_COMBINE, (0, 0))

    def test_fifo_pairing_across_groups(self):
        """Two interleaved groups must pair their LSBs positionally."""
        unit = RfuUnit(standard_registry())
        groups = [([1, 3, 5, 7], [2, 4, 6, 8], [9, 11, 13, 15],
                   [10, 12, 14, 16]),
                  ([255, 0, 1, 2], [254, 1, 0, 3], [100, 101, 102, 103],
                   [104, 105, 106, 107])]
        halves = []
        for t0, t1, b0, b1 in groups:
            h_top, _ = unit.execute(A1_HAVG, (pack_bytes(t0), pack_bytes(t1)))
            h_bot, _ = unit.execute(A1_HAVG, (pack_bytes(b0), pack_bytes(b1)))
            halves.append((h_top, h_bot))
        for (h_top, h_bot), (t0, t1, b0, b1) in zip(halves, groups):
            combined, _ = unit.execute(A1_COMBINE, (h_top, h_bot))
            expected = [(w + x + y + z + 2) >> 2
                        for w, x, y, z in zip(t0, t1, b0, b1)]
            assert unpack_bytes(combined) == expected


class TestDiag4Semantics:
    @given(st.lists(st.integers(0, 255), min_size=8, max_size=8),
           st.lists(st.integers(0, 255), min_size=8, max_size=8),
           st.integers(0, 3))
    def test_matches_golden_interpolation(self, top, bottom, shift):
        unit = RfuUnit(standard_registry())
        unit.init(DIAG4, (shift,))
        unit.send(DIAG4, (pack_bytes(top[:4]), pack_bytes(top[4:])))
        unit.send(DIAG4, (pack_bytes(bottom[:4]), pack_bytes(bottom[4:])))
        result, _ = unit.execute(DIAG4, ())
        expected = diag_interpolate(top[shift:shift + 5],
                                    bottom[shift:shift + 5])
        assert unpack_bytes(result) == expected

    def test_wrong_operand_count_fails(self):
        unit = RfuUnit(standard_registry())
        unit.init(DIAG4, (0,))
        unit.send(DIAG4, (0, 0, 0))
        with pytest.raises(RfuError):
            unit.execute(DIAG4, ())


class TestDiag16Semantics:
    @given(st.lists(st.integers(0, 255), min_size=20, max_size=20),
           st.lists(st.integers(0, 255), min_size=20, max_size=20),
           st.integers(0, 3))
    def test_row_drain_matches_golden(self, top, bottom, shift):
        unit = RfuUnit(standard_registry())
        unit.init(DIAG16, (shift,))
        top_words = [pack_bytes(top[4 * i:4 * i + 4]) for i in range(5)]
        bottom_words = [pack_bytes(bottom[4 * i:4 * i + 4]) for i in range(5)]
        unit.send(DIAG16, tuple(top_words))
        unit.send(DIAG16, tuple(bottom_words))
        drained = []
        for _ in range(4):
            word, _ = unit.execute(DIAG16, ())
            drained.extend(unpack_bytes(word))
        expected = diag_interpolate(top[shift:shift + 17],
                                    bottom[shift:shift + 17])
        assert drained == expected

    def test_two_rows_in_sequence(self):
        unit = RfuUnit(standard_registry())
        unit.init(DIAG16, (0,))
        for _ in range(2):
            unit.send(DIAG16, tuple(pack_bytes([10, 20, 30, 40])
                                    for _ in range(5)))
            unit.send(DIAG16, tuple(pack_bytes([50, 60, 70, 80])
                                    for _ in range(5)))
            for _ in range(4):
                unit.execute(DIAG16, ())
        assert unit.stats.execs == 8

"""Every example script must run to completion (deliverable smoke tests)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _run_example(name: str, argv=None, capsys=None):
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES / name)] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out if capsys else ""


class TestExamples:
    def test_quickstart(self, capsys):
        out = _run_example("quickstart.py", capsys=capsys)
        assert "speedup" in out
        assert "loop_1x32+2lb_b1" in out

    def test_encode_video(self, capsys):
        out = _run_example("encode_video.py", capsys=capsys)
        assert "3step/2" in out
        assert "full±4" in out
        assert "interpolation mix" in out

    def test_custom_kernel(self, capsys):
        out = _run_example("custom_kernel.py", capsys=capsys)
        assert "blend_base" in out
        assert "blend_rfu" in out
        assert "speedup" in out.lower()

    def test_auto_extraction(self, capsys):
        out = _run_example("auto_extraction.py", capsys=capsys)
        assert "HV row body" in out
        assert "cluster" in out

    def test_reproduce_paper_quick(self, capsys, tmp_path):
        output = tmp_path / "report.txt"
        out = _run_example("reproduce_paper.py", ["3", str(output)],
                           capsys=capsys)
        assert "table7" in out
        assert output.exists()

"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert "1.0" in capsys.readouterr().out

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_report_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.frames == 25
        assert not args.no_extensions


class TestCommands:
    def test_encode_prints_stats(self, capsys):
        assert main(["encode", "--frames", "2"]) == 0
        out = capsys.readouterr().out
        assert "PSNR-Y" in out
        assert "GetSad calls" in out

    def test_encode_full_search(self, capsys):
        assert main(["encode", "--frames", "2", "--strategy", "full",
                     "--range", "2"]) == 0
        captured = capsys.readouterr()
        assert "diagonal" in captured.out
        assert "warning" not in captured.err

    def test_encode_diamond_search(self, capsys):
        assert main(["encode", "--frames", "2", "--strategy", "diamond",
                     "--range", "3"]) == 0
        captured = capsys.readouterr()
        assert "GetSad calls" in captured.out
        assert "warning" not in captured.err

    def test_encode_warns_on_inapplicable_step(self, capsys):
        assert main(["encode", "--frames", "2", "--strategy", "full",
                     "--step", "4"]) == 0
        err = capsys.readouterr().err
        assert "--step is ignored" in err

    def test_encode_warns_on_inapplicable_range(self, capsys):
        assert main(["encode", "--frames", "2", "--strategy", "three-step",
                     "--range", "8"]) == 0
        err = capsys.readouterr().err
        assert "--range is ignored" in err

    def test_encode_applicable_flags_do_not_warn(self, capsys):
        assert main(["encode", "--frames", "2", "--strategy", "three-step",
                     "--step", "2"]) == 0
        assert "warning" not in capsys.readouterr().err

    def test_encode_scalar_and_early_terminate_paths(self, capsys):
        assert main(["encode", "--frames", "2", "--no-fast-me"]) == 0
        scalar_out = capsys.readouterr().out
        assert main(["encode", "--frames", "2", "--early-terminate"]) == 0
        early_out = capsys.readouterr().out
        # same encode decisions either way: identical bit/PSNR summary
        assert scalar_out.splitlines()[-2:] == early_out.splitlines()[-2:]

    def test_kernels_table(self, capsys):
        assert main(["kernels", "--variant", "a3"]) == 0
        out = capsys.readouterr().out
        assert "a3" in out
        assert "FULL" in out and "HV" in out

    def test_schedule_command(self, tmp_path, capsys):
        source = tmp_path / "k.s"
        source.write_text("""
kernel tiny
params p
block b:
    ldw t = p, #0
    addi u = t, #1
result u
""")
        assert main(["schedule", str(source)]) == 0
        out = capsys.readouterr().out
        assert "kernel tiny" in out
        assert "ldw" in out

    def test_report_small(self, tmp_path, capsys):
        output = tmp_path / "report.txt"
        assert main(["report", "--frames", "3", "-q", "--no-extensions",
                     "-o", str(output)]) == 0
        text = output.read_text()
        assert "table1" in text
        assert "figure4" in text

"""VLIW list scheduler: legality and quality properties."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import Operation, Resource, vreg
from repro.program import BasicBlock, Program, schedule_block, schedule_program
from repro.program.scheduler import DEFAULT_CAPACITY, ISSUE_WIDTH, default_latency


def _assert_legal(scheduled, capacity=None, issue_width=ISSUE_WIDTH):
    """Resource limits, issue width and latencies must hold per bundle."""
    capacity = capacity or DEFAULT_CAPACITY
    issue_cycle = {}
    for cycle, bundle in enumerate(scheduled.bundles):
        assert len(bundle) <= issue_width
        used = Counter(op.spec.resource for op in bundle)
        for resource, count in used.items():
            assert count <= capacity[resource], (
                f"cycle {cycle} oversubscribes {resource}")
        for op in bundle:
            issue_cycle[op.uid] = cycle
    return issue_cycle


def _chain(length):
    """A serial dependence chain of adds."""
    regs = [vreg(f"c{i}") for i in range(length + 1)]
    ops = [Operation("movi", dest=regs[0], imm=0)]
    ops += [Operation("addi", dest=regs[i + 1], srcs=(regs[i],), imm=1)
            for i in range(length)]
    return BasicBlock("chain", ops)


class TestLegality:
    def test_issue_width_respected(self):
        ops = [Operation("movi", dest=vreg(), imm=i) for i in range(12)]
        scheduled = schedule_block(BasicBlock("b", ops))
        _assert_legal(scheduled)
        # 12 independent 1-cycle ALU ops on a 4-wide machine: 3 cycles
        assert scheduled.length == 3

    def test_single_lsu_serialises_loads(self):
        p = vreg("p")
        ops = [Operation("ldw", dest=vreg(), srcs=(p,), imm=4 * i,
                         mem_tag=f"t{i}") for i in range(6)]
        scheduled = schedule_block(BasicBlock("b", ops))
        _assert_legal(scheduled)
        assert scheduled.length >= 6

    def test_two_multipliers(self):
        a = vreg("a")
        ops = [Operation("mul", dest=vreg(), srcs=(a, a)) for _ in range(6)]
        scheduled = schedule_block(BasicBlock("b", ops))
        _assert_legal(scheduled)
        assert scheduled.length >= 3

    def test_rfu_capacity_override(self):
        ops = [Operation("rfuexec", dest=vreg(), srcs=(), imm=10 + i)
               for i in range(4)]
        narrow = schedule_block(BasicBlock("b", list(ops)))
        wide_cap = dict(DEFAULT_CAPACITY)
        wide_cap[Resource.RFU] = 4
        wide = schedule_block(BasicBlock("b2", list(ops)), capacity=wide_cap)
        assert narrow.length >= 4
        assert wide.length < narrow.length

    def test_latency_respected(self):
        a = vreg("a")
        b = vreg("b")
        block = BasicBlock("b", [
            Operation("ldw", dest=a, srcs=(vreg("p"),), imm=0),
            Operation("addi", dest=b, srcs=(a,), imm=1),
        ])
        scheduled = schedule_block(block)
        cycles = _assert_legal(scheduled)
        load, add = block.ops
        assert cycles[add.uid] - cycles[load.uid] >= 3

    def test_branch_in_last_bundle(self):
        cond = vreg("c", is_branch=True)
        block = BasicBlock("b", [
            Operation("movi", dest=vreg(), imm=0),
            Operation("cmpnei", dest=cond, srcs=(vreg("n"),), imm=0),
            Operation("br", srcs=(cond,), imm=0, label="b"),
        ])
        scheduled = schedule_block(block)
        _assert_legal(scheduled)
        assert any(op.opcode == "br" for op in scheduled.bundles[-1])

    def test_empty_block_gets_one_bundle(self):
        scheduled = schedule_block(BasicBlock("empty"))
        assert scheduled.length == 1
        assert len(scheduled.bundles[0]) == 0


class TestQuality:
    def test_chain_length_is_critical_path(self):
        scheduled = schedule_block(_chain(10))
        assert scheduled.length == 11  # movi + 10 dependent adds

    def test_independent_work_overlaps_chain(self):
        block = _chain(10)
        block.ops += [Operation("movi", dest=vreg(), imm=i)
                      for i in range(20)]
        scheduled = schedule_block(block)
        _assert_legal(scheduled)
        # the 20 extra ops hide inside the 11-cycle chain
        assert scheduled.length == 11

    def test_all_ops_scheduled_exactly_once(self):
        block = _chain(5)
        block.ops += [Operation("movi", dest=vreg(), imm=i) for i in range(7)]
        scheduled = schedule_block(block)
        scheduled_uids = [op.uid for bundle in scheduled.bundles
                          for op in bundle]
        assert sorted(scheduled_uids) == sorted(op.uid for op in block.ops)


class TestScheduleProgram:
    def test_multi_block(self):
        a = BasicBlock("a", [Operation("movi", dest=vreg(), imm=0)])
        b = BasicBlock("b", [Operation("movi", dest=vreg(), imm=1)])
        scheduled = schedule_program(Program("p", [a, b]))
        assert [blk.label for blk in scheduled.blocks] == ["a", "b"]
        assert scheduled.static_length == 2
        assert scheduled.op_count() == 2

    def test_validates_program(self):
        bad = BasicBlock("a")
        bad.append(Operation("goto", label="missing"))
        with pytest.raises(Exception):
            schedule_program(Program("p", [bad]))


@st.composite
def random_dataflow_block(draw):
    """Random DAG-shaped blocks: each op reads earlier results."""
    num_ops = draw(st.integers(1, 25))
    produced = [vreg("seed")]
    ops = [Operation("movi", dest=produced[0], imm=0)]
    for i in range(num_ops):
        choice = draw(st.sampled_from(["movi", "addi", "add", "ldw"]))
        if choice == "movi":
            dest = vreg()
            ops.append(Operation("movi", dest=dest, imm=i))
        elif choice == "addi":
            src = draw(st.sampled_from(produced))
            dest = vreg()
            ops.append(Operation("addi", dest=dest, srcs=(src,), imm=1))
        elif choice == "add":
            src1 = draw(st.sampled_from(produced))
            src2 = draw(st.sampled_from(produced))
            dest = vreg()
            ops.append(Operation("add", dest=dest, srcs=(src1, src2)))
        else:
            src = draw(st.sampled_from(produced))
            dest = vreg()
            ops.append(Operation("ldw", dest=dest, srcs=(src,), imm=0,
                                 mem_tag=f"m{i}"))
        produced.append(dest)
    return BasicBlock("rand", ops)


class TestSchedulerProperties:
    @settings(max_examples=40, deadline=None)
    @given(random_dataflow_block())
    def test_random_blocks_schedule_legally(self, block):
        scheduled = schedule_block(block)
        cycles = _assert_legal(scheduled)
        # every RAW dependence respects the producer latency
        def_cycle = {}
        for op in block.ops:
            for src in op.srcs:
                if src in def_cycle:
                    producer_cycle, producer_latency = def_cycle[src]
                    assert cycles[op.uid] >= producer_cycle + producer_latency
            if op.dest is not None:
                def_cycle[op.dest] = (cycles[op.uid], default_latency(op))

"""TraceReplayer internals: plane placement, addressing, grouping."""

import pytest

from repro.codec.tracer import MeInvocation, MeTrace
from repro.core.timing import TraceReplayer
from repro.core.scenarios import instruction_scenario, loop_scenario
from repro.rfu.loop_model import Bandwidth, InterpMode


def _invocation(frame=1, mb_x=16, mb_y=16, pred_x=14, pred_y=15,
                mode=InterpMode.FULL, sad=100):
    return MeInvocation(frame=frame, mb_x=mb_x, mb_y=mb_y, pred_x=pred_x,
                        pred_y=pred_y, mode=mode, sad=sad,
                        is_refinement=False)


def _trace(invocations):
    trace = MeTrace()
    for invocation in invocations:
        trace.append(invocation)
    return trace


class TestAddressing:
    def test_planes_allocated_per_frame(self):
        trace = _trace([_invocation(frame=1), _invocation(frame=2)])
        replayer = TraceReplayer(trace)
        for name in ("orig1", "recon0", "orig2", "recon1"):
            assert name in replayer._plane_bases

    def test_alignment_follows_pixel_position(self):
        trace = _trace([_invocation(pred_x=13), _invocation(pred_x=14)])
        replayer = TraceReplayer(trace)
        _, align_13, _ = replayer._addresses(trace.invocations[0])
        _, align_14, _ = replayer._addresses(trace.invocations[1])
        # stride 176 is a multiple of 4, plane bases are 32-aligned
        assert (align_14 - align_13) % 4 == 1

    def test_predictor_and_reference_in_different_planes(self):
        trace = _trace([_invocation()])
        replayer = TraceReplayer(trace)
        pred, _, ref = replayer._addresses(trace.invocations[0])
        plane_bytes = replayer.layout.plane_bytes()
        assert abs(pred - ref) >= plane_bytes - 176 * 17


class TestGrouping:
    def test_groups_follow_macroblock_changes(self):
        trace = _trace([
            _invocation(mb_x=0), _invocation(mb_x=0),
            _invocation(mb_x=16), _invocation(mb_x=16),
            _invocation(mb_x=0),  # revisiting opens a new group
        ])
        replayer = TraceReplayer(trace)
        groups = replayer._macroblock_groups()
        assert [len(group) for group in groups] == [2, 2, 1]

    def test_groups_cover_every_invocation(self):
        trace = _trace([_invocation(mb_x=16 * (i % 3)) for i in range(9)])
        replayer = TraceReplayer(trace)
        total = sum(len(group) for group in replayer._macroblock_groups())
        assert total == len(trace)


class TestOverheadAccounting:
    def test_invocation_overhead_in_static_cycles(self):
        trace = _trace([_invocation() for _ in range(10)])
        with_overhead = TraceReplayer(trace, invocation_overhead=14)
        without = TraceReplayer(trace, invocation_overhead=0)
        scenario = instruction_scenario("orig")
        delta = with_overhead.replay(scenario).static_cycles \
            - without.replay(scenario).static_cycles
        assert delta == 14 * 10

    def test_loop_scenario_also_pays_overhead(self):
        trace = _trace([_invocation() for _ in range(10)])
        with_overhead = TraceReplayer(trace, invocation_overhead=14)
        without = TraceReplayer(trace, invocation_overhead=0)
        scenario = loop_scenario(Bandwidth.B1X32)
        delta = with_overhead.replay(scenario).static_cycles \
            - without.replay(scenario).static_cycles
        assert delta == 14 * 10


class TestScenarioIsolation:
    def test_each_replay_uses_fresh_memory_state(self):
        trace = _trace([_invocation(pred_x=10 + i, mb_x=16)
                        for i in range(20)])
        replayer = TraceReplayer(trace)
        scenario = loop_scenario(Bandwidth.B1X32)
        first = replayer.replay(scenario)
        second = replayer.replay(scenario)
        assert first.stall_cycles == second.stall_cycles
        assert first.total_cycles == second.total_cycles

"""The error-resilient bitstream layer: resync-marker syntax, strict
field validation, robust parsing/concealment, and the hardened bit reader.

The differential guarantee under test: with zero corruption the robust
path is bit-identical to the strict path for both wire layouts, and with
corruption it never raises anything unstructured.
"""

import numpy as np
import pytest

from repro.codec import (
    EncoderConfig,
    FRAME_MARKER,
    Mpeg4Encoder,
    RESILIENT_MAGIC,
    RESYNC_MARKER,
    decode_sequence,
    deserialize,
    parse_robust,
    robust_decode,
    serialize,
)
from repro.codec.bitstream import BitReader, BitWriter, crc8, crc16
from repro.codec.decoder import Mpeg4Decoder, RobustDecoder, concealment_psnr
from repro.codec.motion import ThreeStepSearch
from repro.codec.sequence import SyntheticSequenceConfig, synthetic_sequence
from repro.codec.syntax import CodedMacroblock, INTER
from repro.errors import (
    BitstreamExhausted,
    ChecksumMismatch,
    CodecError,
    DecodeError,
    ExpGolombCorrupt,
    FieldRangeError,
    ReferenceMissing,
    StreamSyntaxError,
)


@pytest.fixture(scope="module")
def small_encoded():
    """Three small (48x48) frames encoded once for the whole module."""
    frames = synthetic_sequence(
        SyntheticSequenceConfig(width=48, height=48, frames=3))
    report = Mpeg4Encoder(EncoderConfig(strategy=ThreeStepSearch(2),
                                        resync_every=1)).encode(frames)
    return frames, report


@pytest.fixture(scope="module")
def resilient_payload(small_encoded):
    _, report = small_encoded
    return report.serialize()


@pytest.fixture(scope="module")
def legacy_payload(small_encoded):
    _, report = small_encoded
    return serialize(report.coded, resync_every=0)


class TestResilientLayout:
    def test_stream_opens_with_magic_and_markers(self, resilient_payload):
        assert resilient_payload[:2] == RESILIENT_MAGIC
        assert resilient_payload.count(FRAME_MARKER) >= 3
        # 48x48 -> 3 MB rows, resync_every=1 -> 3 slices per frame
        assert resilient_payload.count(RESYNC_MARKER) >= 9

    def test_legacy_layout_has_no_magic(self, legacy_payload):
        assert legacy_payload[:2] != RESILIENT_MAGIC
        # legacy streams start with ue(width), whose zero-prefix makes
        # the first bit 0 -- the property magic detection relies on
        assert not legacy_payload[0] & 0x80

    def test_strict_roundtrip_both_layouts(self, small_encoded,
                                           resilient_payload,
                                           legacy_payload):
        _, report = small_encoded
        for payload in (resilient_payload, legacy_payload):
            parsed = deserialize(payload)
            assert parsed.width == report.coded.width
            assert parsed.height == report.coded.height
            assert parsed.qp == report.coded.qp
            assert len(parsed.frames) == len(report.coded.frames)
            for original, restored in zip(report.coded.frames,
                                          parsed.frames):
                assert original.frame_type == restored.frame_type
                for mb_a, mb_b in zip(original.macroblocks,
                                      restored.macroblocks):
                    assert mb_a.mode == mb_b.mode
                    assert mb_a.mv == mb_b.mv
                    for blk_a, blk_b in zip(mb_a.blocks, mb_b.blocks):
                        assert np.array_equal(blk_a.levels, blk_b.levels)

    def test_resilient_overhead_is_modest(self, resilient_payload,
                                          legacy_payload):
        # marker overhead is per-slice, so it looms large on this tiny
        # 48x48 stream; on QCIF at resync_every=2 it is ~10%
        overhead = len(resilient_payload) / len(legacy_payload) - 1.0
        assert 0.0 < overhead < 1.0

    def test_serialize_rejects_bad_resync_period(self, small_encoded):
        _, report = small_encoded
        with pytest.raises(CodecError):
            serialize(report.coded, resync_every=99)  # > 3 MB rows

    def test_report_serialize_requires_an_encode(self):
        from repro.codec.encoder import EncoderReport
        with pytest.raises(CodecError):
            EncoderReport().serialize()


class TestDifferentialGuarantee:
    """Zero corruption -> the robust path equals the strict path exactly."""

    @pytest.mark.parametrize("layout", ["resilient", "legacy"])
    def test_clean_robust_decode_is_bit_identical(self, request, layout,
                                                  resilient_payload,
                                                  legacy_payload):
        payload = resilient_payload if layout == "resilient" \
            else legacy_payload
        strict = decode_sequence(deserialize(payload))
        frames, health = robust_decode(payload)
        assert health.ok, health.summary()
        assert health.mbs_concealed == 0
        assert not health.events
        assert len(frames) == len(strict)
        for robust_frame, strict_frame in zip(frames, strict):
            assert np.array_equal(robust_frame.y, strict_frame.y)
            assert np.array_equal(robust_frame.u, strict_frame.u)
            assert np.array_equal(robust_frame.v, strict_frame.v)

    def test_clean_parse_robust_reports_no_loss(self, resilient_payload):
        parse = parse_robust(resilient_payload)
        assert parse.resilient
        assert parse.mbs_lost == 0
        assert parse.checksum_failures == 0
        assert not parse.events
        assert parse.bits_consumed == 8 * len(resilient_payload)


def _corrupt_second_slice(payload: bytes) -> bytes:
    """XOR a byte of entropy data inside the second slice of frame 0."""
    first = payload.find(RESYNC_MARKER)
    target = payload.find(RESYNC_MARKER, first + 1) + 8
    corrupted = bytearray(payload)
    corrupted[target] ^= 0xFF
    return bytes(corrupted)


class TestConcealment:
    def test_slice_corruption_is_localized(self, resilient_payload):
        """Flipping bits inside one slice conceals only macroblocks near
        it -- the parser re-enters at the next valid marker."""
        corrupted = _corrupt_second_slice(resilient_payload)
        with pytest.raises(DecodeError):
            deserialize(corrupted)
        frames, health = robust_decode(corrupted)
        assert len(frames) == 3
        # 48x48 -> 9 MBs/frame, 3 per slice: damage is bounded by the
        # corrupt slice plus at most the one the garbage parse overran
        assert 0 < health.mbs_concealed <= 6
        assert health.mbs_decoded >= 27 - 6
        assert any(event.code.startswith("REPRO-DEC-")
                   for event in health.events)

    def test_checksum_failure_is_detected_not_fatal(self, resilient_payload):
        corrupted = _corrupt_second_slice(resilient_payload)
        _, health = robust_decode(corrupted)
        assert health.checksum_failures >= 1

    def test_truncated_resilient_stream_keeps_geometry(self,
                                                       resilient_payload):
        cut = resilient_payload[:len(resilient_payload) // 2]
        frames, health = robust_decode(cut)
        assert len(frames) == 3  # full frame count, lost MBs concealed
        for frame in frames:
            assert frame.width == 48 and frame.height == 48
        assert health.mbs_concealed > 0
        assert health.events

    def test_legacy_robust_loses_the_tail(self, legacy_payload,
                                          small_encoded):
        """Legacy streams have no markers: one error conceals the rest."""
        _, report = small_encoded
        cut = legacy_payload[:len(legacy_payload) // 2]
        with pytest.raises(DecodeError):
            deserialize(cut)
        frames, health = robust_decode(cut)
        assert not health.resilient
        assert len(frames) == len(report.coded.frames)
        assert health.mbs_decoded > 0
        assert health.mbs_concealed > 0
        assert health.mbs_decoded + health.mbs_concealed == 27

    def test_concealment_psnr_beats_total_loss(self, resilient_payload):
        clean = decode_sequence(deserialize(resilient_payload))
        frames, _ = robust_decode(_corrupt_second_slice(resilient_payload))
        concealed = concealment_psnr(frames, clean)
        blank = concealment_psnr([], clean)
        assert concealed > blank

    def test_concealed_i_frame_mb_is_midgrey(self, small_encoded):
        _, report = small_encoded
        sequence = deserialize(serialize(report.coded, resync_every=1))
        lost = CodedMacroblock(0, 0, "intra", (0, 0), [], lost=True)
        sequence.frames[0].macroblocks[0] = lost
        decoder = RobustDecoder(sequence)
        frames = decoder.decode()
        assert np.all(frames[0].y[:16, :16] == 128)
        assert decoder.health.mbs_concealed >= 1

    def test_concealed_p_frame_mb_copies_reference(self, small_encoded):
        _, report = small_encoded
        sequence = deserialize(serialize(report.coded, resync_every=1))
        lost = CodedMacroblock(16, 16, "intra", (0, 0), [], lost=True)
        sequence.frames[1].macroblocks[4] = lost  # MB (1,1) of 3x3
        frames = RobustDecoder(sequence).decode()
        assert np.array_equal(frames[1].y[16:32, 16:32],
                              frames[0].y[16:32, 16:32])


def _forged_resilient_header(width, height, qp, frame_count, resync_every):
    """A resilient stream that is nothing but a CRC-valid sequence header
    claiming the given geometry — the forged-header DoS vector."""
    writer = BitWriter()
    writer.write_bytes(RESILIENT_MAGIC)
    header = BitWriter()
    for value in (width, height, qp, frame_count, resync_every):
        header.write_ue(value)
    header.align()
    data = header.getvalue()
    writer.write_bytes(data)
    writer.write_bytes(bytes([crc8(data)]))
    return writer.getvalue()


class TestStreamBudget:
    """A header's claimed decode work must be coverable by the payload:
    at least 6 bits per macroblock on the wire, plus one max-size frame's
    concealment floor.  Without this bound a ~9-byte forged header could
    demand ~4.3e9 lost-macroblock objects from the robust backfill."""

    def test_legacy_header_claiming_huge_geometry_rejected(self):
        writer = BitWriter()
        for value in (4096, 4096, 1, 256):  # 4096x4096, 256 frames
            writer.write_ue(value)
        payload = writer.getvalue()
        assert len(payload) < 16  # tiny on the wire, enormous claim
        with pytest.raises(FieldRangeError):
            deserialize(payload)
        frames, health = robust_decode(payload)
        assert frames == []
        assert any(event.code == FieldRangeError.code
                   for event in health.events)

    def test_forged_resilient_header_rejected(self):
        payload = _forged_resilient_header(4096, 4096, 1, 65536, 256)
        with pytest.raises(FieldRangeError):
            deserialize(payload)
        frames, health = robust_decode(payload)
        assert frames == []
        assert any(event.code == FieldRangeError.code
                   for event in health.events)

    def test_truncation_stays_within_the_backfill_floor(self,
                                                        legacy_payload):
        # a legitimate truncation still conceals the full claimed
        # geometry: the floor covers it (27 MBs << one max-size frame)
        frames, health = robust_decode(legacy_payload[:4])
        if frames:
            assert len(frames) == 3
            assert health.mbs_decoded + health.mbs_concealed == 27


class TestStrictValidation:
    def test_inter_mb_in_first_frame_has_code_and_context(self):
        sequence = deserialize(serialize(
            Mpeg4Encoder(EncoderConfig()).encode(
                [synthetic_sequence(SyntheticSequenceConfig(
                    width=48, height=48, frames=1))[0]]).coded))
        sequence.frames[0].macroblocks[2] = CodedMacroblock(
            32, 0, INTER, (0, 0),
            sequence.frames[0].macroblocks[2].blocks)
        with pytest.raises(ReferenceMissing) as excinfo:
            Mpeg4Decoder(sequence).decode()
        assert excinfo.value.code == "REPRO-DEC-NOREF"
        assert "(32,0)" in str(excinfo.value)
        assert "frame 0" in str(excinfo.value)

    def test_frame_index_mismatch_rejected(self, resilient_payload):
        # duplicate the first frame section: the second copy claims an
        # index the strict parser is not expecting
        first = resilient_payload.find(FRAME_MARKER)
        second = resilient_payload.find(FRAME_MARKER, first + 1)
        doctored = resilient_payload[:second] \
            + resilient_payload[first:second] \
            + resilient_payload[second:]
        with pytest.raises(DecodeError):
            deserialize(doctored)

    def test_trailing_garbage_rejected(self, resilient_payload):
        with pytest.raises(StreamSyntaxError):
            deserialize(resilient_payload + b"\x5a")

    def test_header_padding_corruption_detected(self, resilient_payload):
        # the sequence header's fields end mid-byte, so its final byte
        # carries zero padding ahead of the CRC-8; the CRC is checked
        # against a re-encoding of the fields (which reproduces canonical
        # zero padding), so a flipped padding bit must be caught by the
        # explicit padding check, not slip through unnoticed
        crc_at = resilient_payload.find(FRAME_MARKER) - 1
        corrupted = bytearray(resilient_payload)
        corrupted[crc_at - 1] ^= 0x01
        corrupted = bytes(corrupted)
        with pytest.raises(DecodeError):
            deserialize(corrupted)
        _, health = robust_decode(corrupted)
        assert any(event.code.startswith("REPRO-DEC-")
                   for event in health.events)

    def test_legacy_trailing_garbage_rejected(self, legacy_payload):
        with pytest.raises(StreamSyntaxError):
            deserialize(legacy_payload + b"\x5a")

    def test_legacy_trailing_garbage_is_an_event_in_robust(self,
                                                           legacy_payload):
        frames, health = robust_decode(legacy_payload + b"\x5a\x5a")
        assert len(frames) == 3
        assert health.mbs_concealed == 0
        assert any(event.code == StreamSyntaxError.code
                   for event in health.events)

    def test_error_codes_are_stable(self):
        assert BitstreamExhausted.code == "REPRO-DEC-EXHAUSTED"
        assert ExpGolombCorrupt.code == "REPRO-DEC-EXPGOLOMB"
        assert StreamSyntaxError.code == "REPRO-DEC-SYNTAX"
        assert FieldRangeError.code == "REPRO-DEC-RANGE"
        assert ChecksumMismatch.code == "REPRO-DEC-CHECKSUM"
        assert ReferenceMissing.code == "REPRO-DEC-NOREF"
        for cls in (BitstreamExhausted, ExpGolombCorrupt, StreamSyntaxError,
                    FieldRangeError, ChecksumMismatch, ReferenceMissing):
            assert issubclass(cls, DecodeError)
            assert issubclass(cls, CodecError)
            assert cls("boom").describe().startswith(f"[{cls.code}]")


class TestHardenedBitIo:
    def test_negative_widths_rejected(self):
        with pytest.raises(CodecError):
            BitWriter().write_bits(0, -1)
        with pytest.raises(CodecError):
            BitReader(b"\xff").read_bits(-1)

    def test_exhausted_message_carries_bit_position(self):
        reader = BitReader(b"\xff")
        reader.read_bits(8)
        with pytest.raises(BitstreamExhausted) as excinfo:
            reader.read_bit()
        assert "bit 8" in str(excinfo.value)

    def test_ue_prefix_bound_tracks_payload_size(self):
        # 4 zero bytes cannot complete any ue code: the longest prefix a
        # 32-bit payload could support is 15 zeros, not a magic 64
        with pytest.raises(ExpGolombCorrupt) as excinfo:
            BitReader(b"\x00" * 4).read_ue()
        assert "bit" in str(excinfo.value)

    def test_seek_and_align(self):
        reader = BitReader(b"\xa5\x4d")
        reader.read_bits(3)
        reader.align()
        assert reader.position == 8
        reader.seek_bit(0)
        assert reader.read_bits(8) == 0xA5
        with pytest.raises(CodecError):
            reader.seek_bit(17)

    def test_crc_vectors(self):
        assert crc8(b"") == 0
        assert crc16(b"") == 0xFFFF
        assert crc8(b"123456789") == 0xF4      # CRC-8/SMBUS check value
        assert crc16(b"123456789") == 0x29B1   # CRC-16/CCITT-FALSE check

"""The parallel cached sweep: determinism, caching, resume, isolation.

The load-bearing guarantees asserted here:

* serial and ``jobs=4`` sweeps produce **byte-identical** reports and
  identical ``sweep_report.json`` cycle numbers (the differential tests);
* cache keys are stable across processes, change with any workload knob or
  the code version, and a warm rerun restores every cell from cache;
* an interrupted sweep resumes — cells cached before the interruption are
  not recomputed;
* one failing runner cannot abort the sweep: its error is isolated,
  logged, and surfaced in the exit summary.
"""

import json

import pytest

from repro.core.exploration import Exploration, ExplorationConfig
from repro.core.scenarios import all_scenarios, instruction_scenario, \
    loop_scenario
from repro.errors import ExperimentError
from repro.experiments import runner as runner_mod
from repro.experiments.report import (
    PROVENANCE_BEGIN,
    render_sweep_provenance,
    stamp_sweep_provenance,
)
from repro.experiments.runner import cell_names, run_all
from repro.experiments.workload import workload_fingerprint
from repro.rfu.loop_model import Bandwidth
from repro.sweep import (
    SweepCache,
    SweepConfig,
    WORKLOAD_CELL,
    cell_key,
    code_fingerprint,
    read_events,
    run_sweep,
)

FRAMES = 3


def _sweep(tmp_path, **overrides):
    defaults = dict(frames=FRAMES, root=tmp_path / "sweep")
    defaults.update(overrides)
    return run_sweep(SweepConfig(**defaults))


class TestCacheKey:
    def test_stable_for_equal_inputs(self):
        workload = workload_fingerprint(ExplorationConfig(frames=3))
        again = workload_fingerprint(ExplorationConfig(frames=3))
        assert cell_key("table1", workload, "abc") \
            == cell_key("table1", again, "abc")

    def test_changes_with_cell_workload_and_code(self):
        workload = workload_fingerprint(ExplorationConfig(frames=3))
        other_frames = workload_fingerprint(ExplorationConfig(frames=4))
        other_seed = workload_fingerprint(ExplorationConfig(frames=3,
                                                            seed=7))
        base = cell_key("table1", workload, "abc")
        assert cell_key("table2", workload, "abc") != base
        assert cell_key("table1", other_frames, "abc") != base
        assert cell_key("table1", other_seed, "abc") != base
        assert cell_key("table1", workload, "def") != base

    def test_fingerprint_covers_timing_and_cost_knobs(self):
        workload = workload_fingerprint(ExplorationConfig(frames=3))
        assert workload["timings"]["bus_latency"] == 40
        assert workload["cost_model"]["dct_block"] == 1800

    def test_code_fingerprint_ignores_sweep_package(self, tmp_path):
        pkg = tmp_path / "pkg"
        (pkg / "sweep").mkdir(parents=True)
        (pkg / "model.py").write_text("A = 1\n")
        (pkg / "sweep" / "orchestrator.py").write_text("B = 1\n")
        baseline = code_fingerprint(pkg)
        # the fingerprint memoises per path, so compare fresh trees: an
        # edit under sweep/ must not change it, a model edit must
        pkg2 = tmp_path / "pkg2"
        (pkg2 / "sweep").mkdir(parents=True)
        (pkg2 / "model.py").write_text("A = 1\n")
        (pkg2 / "sweep" / "orchestrator.py").write_text("B = 2\n")
        assert code_fingerprint(pkg2) == baseline
        pkg3 = tmp_path / "pkg3"
        pkg3.mkdir()
        (pkg3 / "model.py").write_text("A = 2\n")
        assert code_fingerprint(pkg3) != baseline


class TestSweepCache:
    def test_roundtrip_and_miss(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        assert cache.get("deadbeef") is None
        cache.put("deadbeef", {"rendered": "x", "wall_s": 0.5})
        assert cache.get("deadbeef")["rendered"] == "x"

    def test_disabled_cache_is_a_noop(self, tmp_path):
        cache = SweepCache(tmp_path / "cache", enabled=False)
        cache.put("k", {"rendered": "x"})
        assert cache.get("k") is None
        assert not (tmp_path / "cache").exists()

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        cache.put("k", {"rendered": "x"})
        (tmp_path / "cache" / "k.json").write_text("{truncated")
        assert cache.get("k") is None

    def test_clear(self, tmp_path):
        cache = SweepCache(tmp_path / "cache")
        cache.put("a", {"rendered": "x"})
        cache.put("b", {"rendered": "y"})
        assert cache.clear() == 2
        assert cache.get("a") is None


class TestDifferential:
    """Serial vs parallel vs the plain serial runner: identical artefacts."""

    @pytest.fixture(scope="class")
    def serial(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("serial")
        return run_sweep(SweepConfig(frames=FRAMES, jobs=1, root=root,
                                     use_cache=False))

    @pytest.fixture(scope="class")
    def parallel(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("parallel")
        return run_sweep(SweepConfig(frames=FRAMES, jobs=4, root=root,
                                     use_cache=False))

    def test_reports_byte_identical(self, serial, parallel):
        assert serial.report == parallel.report

    def test_cycle_numbers_identical(self, serial, parallel):
        serial_cycles = {c["name"]: c.get("cycles")
                         for c in serial.sweep_report["cells"]}
        parallel_cycles = {c["name"]: c.get("cycles")
                           for c in parallel.sweep_report["cells"]}
        assert serial_cycles == parallel_cycles
        assert serial_cycles["table7"]["total_cycles"] > 0

    def test_sections_match_the_serial_runner(self, serial, small_context):
        expected = run_all(context=small_context, extensions=True)
        # drop each header (the runner's includes a wall-time line)
        expected_sections = expected.split("\n\n")[1:]
        sweep_sections = serial.report.split("\n\n")[1:]
        assert sweep_sections == expected_sections

    def test_workload_header_matches_the_serial_runner(self, serial,
                                                       small_context):
        expected = run_all(context=small_context, extensions=True)
        assert serial.report.split("\n\n")[0] \
            == expected.splitlines()[0]

    def test_every_cell_present_in_order(self, serial):
        assert [c.name for c in serial.cells] \
            == [WORKLOAD_CELL] + cell_names(extensions=True)


class TestCachingAndResume:
    def test_warm_rerun_hits_every_cell(self, tmp_path):
        cold = _sweep(tmp_path, jobs=2)
        warm = _sweep(tmp_path, jobs=2)
        assert cold.cache_hits == 0
        assert warm.cache_hits == len(warm.cells)
        assert warm.report == cold.report
        hits = read_events(warm.run_log, "cache_hit")
        assert len(hits) == len(warm.cells)
        assert warm.sweep_report["totals"]["cache_hits"] \
            >= 0.8 * warm.sweep_report["totals"]["cells"]

    def test_resume_after_interrupt(self, tmp_path):
        # simulate an interrupted sweep: only a prefix of cells completed
        partial = _sweep(tmp_path, only=["profile", "table1", "table2"])
        assert partial.cache_hits == 0
        full = _sweep(tmp_path)
        hit_names = {c.name for c in full.cells if c.cached}
        assert {"workload", "profile", "table1", "table2"} <= hit_names
        assert not all(c.cached for c in full.cells)

    def test_no_cache_flag_skips_read_and_write(self, tmp_path):
        _sweep(tmp_path)  # warm
        bypass = _sweep(tmp_path, use_cache=False,
                        only=["profile", "table1"])
        assert bypass.cache_hits == 0

    def test_workload_change_invalidates(self, tmp_path):
        _sweep(tmp_path, only=["figure1"])
        changed = _sweep(tmp_path, frames=4, only=["figure1"])
        assert changed.cache_hits == 0

    def test_only_unknown_cell_raises(self, tmp_path):
        with pytest.raises(ExperimentError, match="unknown cell"):
            _sweep(tmp_path, only=["table99"])


class TestFailureIsolation:
    def test_one_failing_runner_does_not_abort_the_sweep(self, tmp_path,
                                                         monkeypatch):
        def explode(context=None):
            raise RuntimeError("injected failure")

        monkeypatch.setitem(runner_mod.RUNNERS, "table3",
                            ("table", explode))
        result = _sweep(tmp_path, only=["table1", "table3", "figure1"])
        assert [c.name for c in result.failures] == ["table3"]
        assert "table3: ERROR" in result.report
        assert "injected failure" in result.failures[0].error
        # healthy cells still rendered and were cached
        assert "table1:" in result.report
        errors = read_events(result.run_log, "cell_error")
        assert len(errors) == 1 and errors[0]["cell"] == "table3"
        # the failure was not cached: a healthy rerun recomputes it
        monkeypatch.undo()
        rerun = _sweep(tmp_path, only=["table1", "table3", "figure1"])
        assert not rerun.failures
        assert {c.name for c in rerun.cells if c.cached} \
            >= {"table1", "figure1"}

    def test_run_all_collects_failures_and_raises_at_end(self, monkeypatch,
                                                         small_context):
        def explode(context=None):
            raise RuntimeError("injected failure")

        monkeypatch.setitem(runner_mod.RUNNERS, "table3",
                            ("table", explode))
        with pytest.raises(ExperimentError, match="1 runner"):
            run_all(context=small_context, extensions=False)
        report = run_all(context=small_context, extensions=False,
                         raise_on_error=False)
        assert "table3: ERROR" in report
        assert "table7" in report  # later runners still executed


class TestRunLog:
    def test_events_cover_the_lifecycle(self, tmp_path):
        result = _sweep(tmp_path, only=["figure1"])
        kinds = [e["event"] for e in read_events(result.run_log)]
        assert kinds[0] == "sweep_start"
        assert "cell_start" in kinds and "cell_finish" in kinds
        assert kinds[-1] == "sweep_finish"

    def test_finish_events_carry_wall_time_and_cycles(self, tmp_path):
        result = _sweep(tmp_path, only=["table1"])
        finishes = {e["cell"]: e
                    for e in read_events(result.run_log, "cell_finish")}
        assert finishes["table1"]["wall_s"] >= 0
        assert finishes["table1"]["cycles"]["total_cycles"] > 0
        assert finishes["workload"]["cycles"]["invocations"] > 0

    def test_truncated_log_still_parses(self, tmp_path):
        result = _sweep(tmp_path, only=["figure1"])
        with open(result.run_log, "a") as handle:
            handle.write('{"event": "cell_')
        events = read_events(result.run_log)
        assert events[-1]["event"] == "sweep_finish"


class TestProvenance:
    def test_render_includes_totals_and_cells(self, tmp_path):
        result = _sweep(tmp_path, only=["table1", "figure1"])
        block = render_sweep_provenance(result.sweep_report)
        assert "Timing provenance" in block
        assert "| table1 |" in block
        assert f"code version `{result.sweep_report['code_version']}`" \
            in block

    def test_distributed_reports_attribute_workers(self, tmp_path):
        result = _sweep(tmp_path, only=["figure1"])
        report = dict(result.sweep_report)
        report["hosts"] = {"vm-1": {"cells": 2}}
        report["cells"] = [dict(cell, worker="vm-1")
                           for cell in report["cells"]]
        block = render_sweep_provenance(report)
        assert "distributed fleet of 1 worker(s)" in block
        assert "`vm-1` (2 cells)" in block
        assert "| worker |" in block
        assert "| vm-1 |" in block

    def test_stamp_inserts_and_replaces(self, tmp_path):
        result = _sweep(tmp_path, only=["figure1"])
        doc = "# EXPERIMENTS\n\nbody\n"
        stamped = stamp_sweep_provenance(doc, result.sweep_report)
        assert stamped.startswith(doc)
        assert stamped.count(PROVENANCE_BEGIN) == 1
        restamped = stamp_sweep_provenance(stamped, result.sweep_report)
        assert restamped.count(PROVENANCE_BEGIN) == 1
        assert "body" in restamped

    def test_sweep_report_artifact_written(self, tmp_path):
        result = _sweep(tmp_path, only=["figure1"])
        on_disk = json.loads(result.report_path.read_text())
        # the on-disk report is the deterministic half of the in-memory
        # superset: schedule-dependent totals live in sweep_timing.json
        assert on_disk["totals"] == {
            "cells": result.sweep_report["totals"]["cells"],
            "errors": result.sweep_report["totals"]["errors"],
        }
        assert on_disk["workload"]["frames"] == FRAMES
        timing = json.loads(result.timing_path.read_text())
        assert timing["totals"]["executed"] \
            == result.sweep_report["totals"]["executed"]
        assert {row["name"] for row in on_disk["cells"]} \
            == {row["name"] for row in timing["cells"]}


class TestParallelExploration:
    def test_parallel_replay_matches_serial(self):
        scenarios = [instruction_scenario("orig"),
                     instruction_scenario("a2"),
                     loop_scenario(Bandwidth.B1X32),
                     loop_scenario(Bandwidth.B1X32, line_buffer_b=True)]
        exploration = Exploration(ExplorationConfig(frames=FRAMES))
        serial = exploration.run(scenarios)
        parallel = exploration.run(scenarios, jobs=2)
        assert set(serial.results) == set(parallel.results)
        for name, timing in serial.results.items():
            assert parallel.results[name] == timing

    def test_prime_fills_the_context_cache(self, tmp_path):
        from repro.experiments.workload import ExperimentContext
        context = ExperimentContext(ExplorationConfig(frames=FRAMES))
        context.prime(jobs=2)
        assert set(context._results) \
            == {s.name for s in all_scenarios()}


class TestIncremental:
    """--incremental: diff per-cell keys, re-execute only what moved."""

    @staticmethod
    def _package_copy(tmp_path):
        import pathlib
        import shutil

        import repro
        copy = tmp_path / "tree" / "repro"
        shutil.copytree(pathlib.Path(repro.__file__).parent, copy,
                        ignore=shutil.ignore_patterns("__pycache__"))
        return copy

    def test_incremental_requires_the_cache(self, tmp_path):
        with pytest.raises(ExperimentError):
            _sweep(tmp_path, incremental=True, use_cache=False)

    def test_unchanged_tree_executes_nothing(self, tmp_path):
        first = _sweep(tmp_path, only=["figure1"])
        first_bytes = first.report_path.read_bytes()
        second = _sweep(tmp_path, only=["figure1"], incremental=True)
        events = [e["event"] for e in read_events(second.run_log)]
        assert "cell_start" not in events
        assert "incremental_plan" in events
        assert events.count("incremental_skip") == 2   # workload + figure1
        assert second.report == first.report
        assert second.report_path.read_bytes() == first_bytes

    def test_codec_only_edit_invalidates_no_cell(self, tmp_path):
        # the acceptance scenario: a decoder edit is reachable from no
        # cell, so the incremental re-sweep restores everything from
        # cache and reproduces the report byte-for-byte
        first = _sweep(tmp_path)
        first_bytes = first.report_path.read_bytes()
        copy = self._package_copy(tmp_path)
        with open(copy / "codec" / "decoder.py", "a") as handle:
            handle.write("\n# decoder-only edit\n")
        second = _sweep(tmp_path, incremental=True, code_root=copy)
        events = [e["event"] for e in read_events(second.run_log)]
        assert "cell_start" not in events
        assert "incremental_invalidated" not in events
        assert second.report == first.report
        assert second.report_path.read_bytes() == first_bytes

    def test_model_edit_re_executes_only_reachable_cells(self, tmp_path):
        first = _sweep(tmp_path, only=["table1", "figure1"])
        copy = self._package_copy(tmp_path)
        with open(copy / "codec" / "encoder.py", "a") as handle:
            handle.write("\n# encoder edit\n")
        second = _sweep(tmp_path, only=["table1", "figure1"],
                        incremental=True, code_root=copy)
        started = [e["cell"] for e in read_events(second.run_log)
                   if e["event"] == "cell_start"]
        invalidated = [e["cell"] for e in read_events(second.run_log)
                       if e["event"] == "incremental_invalidated"]
        # the workload context and table1 run the encoder; figure1 is a
        # pure trace replay and must be restored, not re-run
        assert set(invalidated) == {WORKLOAD_CELL, "table1"}
        assert set(started) == {WORKLOAD_CELL, "table1"}
        assert second.report == first.report

    def test_incremental_miss_executes_honestly(self, tmp_path):
        first = _sweep(tmp_path, only=["figure1"])
        # the previous report promises a restore, but the cache is gone
        import shutil
        shutil.rmtree(tmp_path / "sweep" / "cache")
        second = _sweep(tmp_path, only=["figure1"], incremental=True)
        events = [e["event"] for e in read_events(second.run_log)]
        assert "incremental_miss" in events
        assert "cell_start" in events
        assert second.report == first.report

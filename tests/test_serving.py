"""The concurrent streaming codec service, pinned by its differential.

The load-bearing guarantee: a stream fed through the service **in
segments, interleaved with other streams, on a worker pool** produces a
bitstream *byte-identical* to a one-shot ``Mpeg4Encoder.encode`` of the
same frames — clean and under injected worker faults survived by the
retry budget.  Around it:

* the lock-striped shared cache (capacity bound, counters, identity
  keying) and the ``fastme`` engine's new ``cache_stats``/``clear``;
* backpressure: submits over ``max_pending`` are shed with
  ``REPRO-SRV-BACKPRESSURE`` and service memory stays bounded when a
  client stops collecting;
* decode streams: malformed segments are concealed (health events),
  never fatal to the stream or the pool;
* failed segments: exhausting the retry budget yields a structured
  ``REPRO-SRV-SEGMENT`` result, poisons only that stream, and leaves
  sibling streams' bitstreams untouched;
* supervision: a dead or hung pool worker's streams migrate to a live
  worker (checkpoint restore + re-dispatch of retained inputs) and the
  final bitstream stays byte-identical; ``migrate=False`` keeps the
  older poison-the-casualties semantics;
* the TCP/JSON-lines transport: round trip, protocol errors, stable
  error codes over the wire, optional shared-token auth
  (``REPRO-SRV-AUTH``), and disconnect-fault cleanup (a dropped
  connection aborts its streams — no worker-state leak).
"""

import asyncio
import json
import socket
import threading
import time

import numpy as np
import pytest

from repro import faults
from repro.codec import (
    EncoderConfig,
    Mpeg4Encoder,
    SyntheticSequenceConfig,
    synthetic_sequence,
)
from repro.codec.fastme import FastSadEngine
from repro.errors import (
    BackpressureReject,
    SegmentFailed,
    ServiceAuthError,
    ServiceError,
    ServiceProtocolError,
    ServiceUnavailable,
    StreamClosed,
    StreamUnknown,
)
from repro.serve import (
    CodecService,
    ServiceClient,
    ServiceServer,
    SharedArrayCache,
    StreamConfig,
    wire_to_frame,
)


@pytest.fixture(autouse=True)
def _no_fault_plan():
    faults.clear()
    yield
    faults.clear()


def _frames(count, seed=2002):
    """A tiny (64x48) sequence so per-test encodes stay fast."""
    return synthetic_sequence(SyntheticSequenceConfig(
        width=64, height=48, frames=count, seed=seed))


def _one_shot(frames, **knobs):
    return Mpeg4Encoder(EncoderConfig(**knobs)).encode(frames).serialize()


def _drain(service, stream, want, timeout=30.0):
    results = []
    while len(results) < want:
        batch = service.collect(stream, timeout=timeout)
        assert batch, f"no result within {timeout}s ({len(results)}/{want})"
        results.extend(batch)
    return results


class TestSharedArrayCache:
    def test_identity_keyed_hit_and_counters(self):
        cache = SharedArrayCache(capacity=4, stripes=2)
        array = np.arange(8)
        value, hit = cache.get_or_build(array, lambda a: a.sum())
        again, hit2 = cache.get_or_build(array, lambda a: pytest.fail(
            "a hit must not rebuild"))
        assert (value, hit, again, hit2) == (28, False, 28, True)
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["builds"] == 1
        assert stats["hit_rate"] == 0.5

    def test_capacity_bound_holds_under_any_key_distribution(self):
        cache = SharedArrayCache(capacity=4, stripes=3)
        arrays = [np.full(4, i) for i in range(40)]
        for array in arrays:
            cache.get_or_build(array, lambda a: None)
        # ceil(4/3)=2 per stripe, 3 stripes -> at most 6 live entries
        assert len(cache) <= 6
        assert cache.stats()["evictions"] >= 34

    def test_clear_resets_entries_and_counters(self):
        cache = SharedArrayCache(capacity=4)
        cache.get_or_build(np.arange(3), lambda a: 0)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["builds"] == 0

    def test_validates_construction(self):
        with pytest.raises(Exception):
            SharedArrayCache(capacity=0)


class TestSharedArrayCacheContention:
    """The lock-striping contract under real thread contention."""

    @staticmethod
    def _hammer(threads, target):
        """Barrier-start ``threads`` copies of ``target``; re-raise the
        first failure so assertion errors inside workers fail the test."""
        barrier = threading.Barrier(threads)
        failures = []

        def run():
            try:
                barrier.wait(timeout=10)
                target()
            except Exception as exc:  # noqa: BLE001 -- surfaced below
                failures.append(exc)

        pool = [threading.Thread(target=run) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join(timeout=60)
            assert not thread.is_alive(), "contention worker hung"
        if failures:
            raise failures[0]

    def test_counters_and_bound_survive_a_thread_storm(self):
        threads, rounds = 8, 50
        cache = SharedArrayCache(capacity=6, stripes=3)
        arrays = [np.full(4, value) for value in range(12)]
        expected = {id(array): array.sum() for array in arrays}
        bound = 2 * 3   # ceil(6/3) per stripe, 3 stripes

        def worker():
            rng = np.random.default_rng(
                threading.get_ident() % (2 ** 32))
            for _ in range(rounds):
                array = arrays[int(rng.integers(len(arrays)))]
                value, _ = cache.get_or_build(array, lambda a: a.sum())
                assert value == expected[id(array)]
                assert len(cache) <= bound

        self._hammer(threads, worker)
        stats = cache.stats()
        # every lookup is accounted exactly once: no lost increments
        assert stats["hits"] + stats["builds"] == threads * rounds
        assert len(cache) <= bound

    def test_racing_builds_of_one_key_agree_and_land_one_entry(self):
        threads = 8
        cache = SharedArrayCache(capacity=4, stripes=2)
        array = np.arange(64)
        values = []
        lock = threading.Lock()

        def slow_build(a):
            time.sleep(0.02)   # widen the race window
            return int(a.sum())

        def worker():
            value, _ = cache.get_or_build(array, slow_build)
            with lock:
                values.append(value)

        self._hammer(threads, worker)
        # losers redo the pure build but every caller sees the same
        # value, and the key occupies exactly one slot
        assert values == [int(array.sum())] * threads
        assert len(cache) == 1
        stats = cache.stats()
        assert stats["builds"] >= 1
        assert stats["hits"] + stats["builds"] == threads

    def test_concurrent_clear_never_corrupts(self):
        threads, rounds = 6, 30
        cache = SharedArrayCache(capacity=8, stripes=4)
        arrays = [np.full(2, value) for value in range(8)]

        def worker():
            me = threading.get_ident()
            for index in range(rounds):
                cache.get_or_build(arrays[(me + index) % len(arrays)],
                                   lambda a: a.sum())
                if index % 10 == 9:
                    cache.clear()

        self._hammer(threads, worker)
        cache.clear()
        stats = cache.stats()
        assert len(cache) == 0
        assert stats["hits"] == stats["builds"] == stats["evictions"] == 0


class TestEngineCacheStats:
    def test_stats_and_clear(self):
        engine = FastSadEngine()
        reference = np.zeros((48, 64), dtype=np.uint8)
        engine.planes(reference)
        engine.planes(reference)
        stats = engine.cache_stats()
        assert stats["plane_builds"] == 1 and stats["plane_hits"] == 1
        assert stats["plane_hit_rate"] == 0.5
        assert stats["plane_entries"] == 1
        engine.clear()
        stats = engine.cache_stats()
        assert stats["plane_builds"] == 0 and stats["plane_entries"] == 0

    def test_shared_backend_view(self):
        shared = SharedArrayCache(capacity=4, name="planes")
        engine = FastSadEngine(plane_cache=shared)
        reference = np.zeros((48, 64), dtype=np.uint8)
        engine.planes(reference)
        engine.planes(reference)
        stats = engine.cache_stats()
        assert stats["shared_planes"]["hits"] == 1
        assert stats["plane_hits"] == 1   # local counters still tally

    def test_two_engines_share_one_pool(self):
        shared = SharedArrayCache(capacity=4, name="planes")
        reference = np.zeros((48, 64), dtype=np.uint8)
        first = FastSadEngine(plane_cache=shared)
        second = FastSadEngine(plane_cache=shared)
        first.planes(reference)
        second.planes(reference)   # other engine, same array: a hit
        assert shared.stats() == pytest.approx(
            {**shared.stats(), "hits": 1, "builds": 1})


class TestSegmentedEncoder:
    @pytest.mark.parametrize("gop,resync", [(0, 0), (3, 2)])
    def test_segments_are_byte_identical_to_one_shot(self, gop, resync):
        frames = _frames(7)
        reference = _one_shot(frames, qp=10, gop_size=gop,
                              resync_every=resync)
        encoder = Mpeg4Encoder(EncoderConfig(qp=10, gop_size=gop,
                                             resync_every=resync))
        report = None
        for cut in ((0, 1), (1, 4), (4, 7)):      # ragged segmentation
            report = encoder.encode_segment(frames[cut[0]:cut[1]], report)
        assert report.serialize() == reference

    def test_empty_first_segment_is_an_error(self):
        encoder = Mpeg4Encoder()
        with pytest.raises(Exception):
            encoder.encode_segment([])


@pytest.mark.parametrize("workers", [0, 2])
class TestServiceDifferential:
    def test_interleaved_streams_match_sequential_encodes(self, workers):
        streams = {
            "a": (_frames(5, seed=1), dict(qp=10, gop_size=3,
                                           resync_every=1)),
            "b": (_frames(5, seed=2), dict(qp=14, gop_size=0,
                                           resync_every=0)),
            "c": (_frames(5, seed=3), dict(qp=8, gop_size=2,
                                           resync_every=2)),
        }
        references = {name: _one_shot(frames, **knobs)
                      for name, (frames, knobs) in streams.items()}
        with CodecService(workers=workers, max_pending=8) as service:
            ids = {name: service.open_stream(StreamConfig(
                kind="encode", **knobs))
                for name, (_, knobs) in streams.items()}
            # interleave: submit segment i of every stream before i+1
            for start in range(0, 5, 2):
                for name, (frames, _) in streams.items():
                    service.submit_segment(ids[name],
                                           frames[start:start + 2])
            for name in streams:
                results = _drain(service, ids[name], 3)
                assert all(result.ok for result in results)
                summary = service.close_stream(ids[name])
                assert summary.payload == references[name], name
                assert summary.frames == 5

    def test_identical_under_injected_worker_faults(self, workers):
        frames = _frames(4, seed=5)
        reference = _one_shot(frames, qp=10, resync_every=1)
        # every stream's first attempt raises; the retry budget absorbs it
        faults.install("seed=7;raise:*:times=1;latency:*:delay=0.01")
        with CodecService(workers=workers, max_pending=8) as service:
            stream = service.open_stream(StreamConfig(
                kind="encode", qp=10, resync_every=1, max_retries=2))
            for start in range(0, 4, 2):
                service.submit_segment(stream, frames[start:start + 2])
            results = _drain(service, stream, 2)
            assert all(result.ok for result in results)
            assert results[0].attempts == 2     # the injected retry
            assert service.close_stream(stream).payload == reference

    def test_failed_segment_poisons_only_its_stream(self, workers):
        frames = _frames(4, seed=6)
        reference = _one_shot(frames, qp=10)
        with CodecService(workers=workers, max_pending=8) as service:
            healthy = service.open_stream(StreamConfig(kind="encode",
                                                       qp=10))
            doomed = service.open_stream(StreamConfig(
                kind="encode", qp=10, max_retries=1))
            # exceed doomed's retry budget, leave the sibling untouched
            faults.install(f"raise:{doomed}:times=5")
            service.submit_segment(doomed, frames[:2])
            failed = _drain(service, doomed, 1)[0]
            assert not failed.ok
            assert failed.error_code == SegmentFailed.code
            assert failed.attempts == 2         # 1 try + max_retries=1
            with pytest.raises(SegmentFailed):
                service.submit_segment(doomed, frames[2:])
            service.abort_stream(doomed)
            for start in range(0, 4, 2):
                service.submit_segment(healthy, frames[start:start + 2])
            _drain(service, healthy, 2)
            assert service.close_stream(healthy).payload == reference


class TestWorkerRespawn:
    """A dead pool worker is replaced.  With ``migrate=False`` (these
    tests) only the in-flight segments fail — the poison-the-casualties
    semantics migration superseded as the default."""

    @staticmethod
    def _kill_worker(service, index=0):
        process = service._processes[index]
        process.terminate()
        process.join(timeout=10)
        assert not process.is_alive()

    def test_decode_stream_survives_a_worker_death(self):
        payload = _one_shot(_frames(2), qp=10)
        with CodecService(workers=1, max_pending=8,
                          migrate=False) as service:
            stream = service.open_stream(StreamConfig(kind="decode"))
            service.submit_segment(stream, payload)
            assert _drain(service, stream, 1)[0].ok
            self._kill_worker(service)
            # the submit that detects the death is the in-flight
            # casualty: it fails structurally, the stream lives on
            index = service.submit_segment(stream, payload)
            casualty = _drain(service, stream, 1)[0]
            assert casualty.segment == index and not casualty.ok
            assert casualty.error_code == SegmentFailed.code
            service.submit_segment(stream, payload)
            assert _drain(service, stream, 1)[0].ok
            assert service.stats()["totals"]["respawns"] == 1
            summary = service.close_stream(stream)
            assert summary.kind == "decode"

    def test_encode_stream_with_history_fails_structured(self):
        frames = _frames(4, seed=9)
        reference = _one_shot(frames, qp=10)
        with CodecService(workers=1, max_pending=8,
                          migrate=False) as service:
            stream = service.open_stream(StreamConfig(kind="encode",
                                                      qp=10))
            service.submit_segment(stream, frames[:2])
            assert _drain(service, stream, 1)[0].ok
            self._kill_worker(service)
            # the encoder state died with the worker: the detecting
            # submit fails, then the stream is poisoned — not the pool
            service.submit_segment(stream, frames[2:])
            assert not _drain(service, stream, 1)[0].ok
            with pytest.raises(SegmentFailed):
                service.submit_segment(stream, frames[2:])
            service.abort_stream(stream)
            # a fresh stream on the respawned worker is byte-identical
            fresh = service.open_stream(StreamConfig(kind="encode",
                                                     qp=10))
            for start in range(0, 4, 2):
                service.submit_segment(fresh, frames[start:start + 2])
            _drain(service, fresh, 2)
            assert service.close_stream(fresh).payload == reference

    def test_fresh_encode_stream_is_reopened_on_the_replacement(self):
        frames = _frames(2, seed=11)
        with CodecService(workers=1, max_pending=8,
                          migrate=False) as service:
            stream = service.open_stream(StreamConfig(kind="encode",
                                                      qp=10))
            self._kill_worker(service)
            # nothing was in flight: the respawn re-opens the stream
            # with no casualties and encoding proceeds untouched
            another = service.open_stream(StreamConfig(kind="encode",
                                                       qp=10))
            service.submit_segment(stream, frames)
            assert _drain(service, stream, 1)[0].ok
            assert service.close_stream(stream).payload \
                == _one_shot(frames, qp=10)
            service.abort_stream(another)
            assert service.stats()["totals"]["respawns"] == 1

    def test_respawn_budget_exhaustion_is_unavailable(self):
        with CodecService(workers=1, max_pending=8,
                          max_respawns=0) as service:
            stream = service.open_stream(StreamConfig(kind="decode"))
            self._kill_worker(service)
            with pytest.raises(ServiceUnavailable):
                service.submit_segment(stream, b"x")


class TestStreamMigration:
    """``migrate=True`` (the default): a casualty worker's streams
    resume on a live worker — checkpoint restore plus re-dispatch of
    the retained segment inputs — and the final bitstream is
    byte-identical to a run that never saw the fault."""

    def test_killed_worker_stream_migrates_byte_identically(self):
        frames = _frames(6, seed=21)
        reference = _one_shot(frames, qp=10, resync_every=1)
        with CodecService(workers=2, max_pending=8) as service:
            stream = service.open_stream(StreamConfig(
                kind="encode", qp=10, resync_every=1))
            service.submit_segment(stream, frames[:2])
            assert _drain(service, stream, 1)[0].ok   # checkpoint lands
            victim = service._streams[stream].worker
            process = service._processes[victim]
            process.terminate()
            process.join(timeout=10)
            # the submit that detects the death migrates the stream and
            # re-dispatches it from the delivered checkpoint
            service.submit_segment(stream, frames[2:4])
            service.submit_segment(stream, frames[4:6])
            results = _drain(service, stream, 2)
            assert all(result.ok for result in results)
            summary = service.close_stream(stream)
            assert summary.payload == reference
            totals = service.stats()["totals"]
            assert totals["migrations"] == 1
            assert totals["respawns"] == 1

    def test_inflight_segments_are_redispatched_not_failed(self):
        frames = _frames(6, seed=22)
        reference = _one_shot(frames, qp=10)
        with CodecService(workers=2, max_pending=8) as service:
            stream = service.open_stream(StreamConfig(kind="encode",
                                                      qp=10))
            victim = service._streams[stream].worker
            for start in range(0, 6, 2):
                service.submit_segment(stream, frames[start:start + 2])
            process = service._processes[victim]
            process.terminate()
            process.join(timeout=10)
            # whatever was in flight when the worker died — queued,
            # executing, or delivered — close re-dispatches the rest
            # from the retained inputs and stays byte-identical
            summary = service.close_stream(stream)
            assert summary.payload == reference
            assert len(summary.uncollected) == 3
            assert all(result.ok for result in summary.uncollected)

    def test_hung_worker_is_detected_and_streams_migrate(self):
        frames = _frames(4, seed=23)
        reference = _one_shot(frames, qp=10)
        # the first dispatch of any segment freezes its worker for 30s;
        # the drainer's deadline must catch it long before that
        faults.install("hang:*:times=1:delay=30")
        with CodecService(workers=2, max_pending=8,
                          segment_timeout_s=1.0) as service:
            stream = service.open_stream(StreamConfig(kind="encode",
                                                      qp=10))
            service.submit_segment(stream, frames[:2])
            service.submit_segment(stream, frames[2:])
            results = _drain(service, stream, 2, timeout=60.0)
            assert all(result.ok for result in results)
            summary = service.close_stream(stream)
            assert summary.payload == reference
            totals = service.stats()["totals"]
            assert totals["hangs_detected"] == 1
            assert totals["migrations"] == 1
            assert totals["respawns"] == 1

    def test_decode_stream_migrates_with_health_totals(self):
        payload = _one_shot(_frames(2), qp=10)
        with CodecService(workers=1, max_pending=8) as service:
            stream = service.open_stream(StreamConfig(kind="decode"))
            service.submit_segment(stream, payload)
            assert _drain(service, stream, 1)[0].ok
            process = service._processes[0]
            process.terminate()
            process.join(timeout=10)
            # migrated, not a casualty: the next submit succeeds
            service.submit_segment(stream, payload)
            assert _drain(service, stream, 1)[0].ok
            summary = service.close_stream(stream)
            assert summary.segments == 2     # checkpoint carried them
            assert summary.health["mbs_concealed"] == 0

    def test_close_rebalances_stream_pinning(self):
        with CodecService(workers=2, max_pending=8) as service:
            first = service.open_stream(StreamConfig(kind="decode"))
            second = service.open_stream(StreamConfig(kind="decode"))
            assert sorted(service._pinned) == [1, 1]
            workers = {service._streams[first].worker,
                       service._streams[second].worker}
            assert workers == {0, 1}
            freed = service._streams[first].worker
            service.close_stream(first)
            third = service.open_stream(StreamConfig(kind="decode"))
            # the new stream lands on the worker the close freed up
            assert service._streams[third].worker == freed
            service.close_stream(second)
            service.close_stream(third)
            assert service._pinned == [0, 0]


class TestBackpressure:
    def test_submit_over_the_bound_is_shed(self):
        frames = _frames(4)
        with CodecService(workers=0, max_pending=2) as service:
            stream = service.open_stream(StreamConfig(kind="encode"))
            service.submit_segment(stream, frames[:1])
            service.submit_segment(stream, frames[1:2])
            with pytest.raises(BackpressureReject) as exc_info:
                service.submit_segment(stream, frames[2:3])
            assert exc_info.value.code == "REPRO-SRV-BACKPRESSURE"
            # the rejected segment was NOT enqueued...
            assert service.stats()["streams"][stream]["pending"] == 2
            assert service.stats()["streams"][stream]["rejects"] == 1
            # ...and collecting reopens the window for the same segment
            service.collect(stream)
            index = service.submit_segment(stream, frames[2:3])
            assert index == 2

    def test_memory_stays_bounded_when_the_client_stops_collecting(self):
        frames = _frames(1)
        with CodecService(workers=0, max_pending=3) as service:
            stream = service.open_stream(StreamConfig(kind="encode"))
            accepted = rejected = 0
            for _ in range(20):                 # a client that never collects
                try:
                    service.submit_segment(stream, frames)
                    accepted += 1
                except BackpressureReject:
                    rejected += 1
            assert accepted == 3 and rejected == 17
            state = service.stats()["streams"][stream]
            assert state["pending"] == 3        # bounded, not 20
            # the uncollected results ride along on close, none lost
            summary = service.close_stream(stream)
            assert len(summary.uncollected) == 3

    def test_slowclient_fault_delays_collect(self):
        faults.install("slowclient:*:times=1:delay=0.05")
        with CodecService(workers=0) as service:
            stream = service.open_stream(StreamConfig(kind="encode"))
            import time
            started = time.perf_counter()
            service.collect(stream)
            assert time.perf_counter() - started >= 0.05


class TestDecodeStreams:
    def test_malformed_segments_are_concealed_not_fatal(self):
        frames = _frames(3)
        payload = _one_shot(frames, qp=10, resync_every=1)
        with CodecService(workers=0) as service:
            stream = service.open_stream(StreamConfig(kind="decode"))
            service.submit_segment(stream, payload)
            service.submit_segment(stream, payload[:len(payload) // 2])
            service.submit_segment(stream, b"\x00" * 40)
            results = _drain(service, stream, 3)
            assert [result.ok for result in results] == [True] * 3
            assert results[0].mbs_concealed == 0
            assert results[1].mbs_concealed > 0   # truncation concealed
            summary = service.close_stream(stream)
            assert summary.health["mbs_concealed"] > 0
            # the pool survived: a fresh stream still works
            fresh = service.open_stream(StreamConfig(kind="decode"))
            service.submit_segment(fresh, payload)
            assert _drain(service, fresh, 1)[0].ok
            service.abort_stream(fresh)

    def test_wrong_payload_type_is_a_structured_failure(self):
        with CodecService(workers=0) as service:
            stream = service.open_stream(StreamConfig(kind="decode"))
            service.submit_segment(stream, _frames(1))   # frames, not bytes
            result = _drain(service, stream, 1)[0]
            assert not result.ok and result.error_code


class TestSessionApi:
    def test_unknown_and_closed_stream_codes(self):
        with CodecService(workers=0) as service:
            with pytest.raises(StreamUnknown):
                service.submit_segment("nope", _frames(1))
            stream = service.open_stream(StreamConfig(kind="encode"))
            service.submit_segment(stream, _frames(1))
            service.collect(stream, timeout=10)
            service.close_stream(stream)
            with pytest.raises(StreamUnknown):
                service.collect(stream)

    def test_submit_after_close_is_rejected(self):
        with CodecService(workers=0) as service:
            stream = service.open_stream(StreamConfig(kind="encode"))
            state = service._streams[stream]
            state.closing = True
            with pytest.raises(StreamClosed):
                service.submit_segment(stream, _frames(1))

    def test_shutdown_rejects_new_work(self):
        service = CodecService(workers=0)
        service.shutdown()
        with pytest.raises(ServiceUnavailable):
            service.open_stream(StreamConfig())

    def test_config_validation(self):
        with pytest.raises(ServiceError):
            StreamConfig(kind="transcode")
        with pytest.raises(ServiceError):
            StreamConfig.from_dict({"kind": "encode", "bogus": 1})
        with pytest.raises(ServiceError):
            CodecService(workers=0, max_pending=0)

    def test_close_summary_reports_shared_cache_stats(self):
        frames = _frames(3)
        with CodecService(workers=0) as service:
            stream = service.open_stream(StreamConfig(kind="encode"))
            service.submit_segment(stream, frames)
            _drain(service, stream, 1)
            summary = service.close_stream(stream)
            shared = summary.cache["shared_planes"]
            assert shared["builds"] >= 1
            assert 0.0 <= shared["hit_rate"] <= 1.0
            assert "hit_rate" in service.stats()["totals"]["cache"]["planes"]


class _ServerHarness:
    """One event-loop thread hosting a ServiceServer for client tests."""

    def __init__(self, service, auth_token=None):
        self.service = service
        self.loop = asyncio.new_event_loop()
        self.server = ServiceServer(service, "127.0.0.1", 0,
                                    auth_token=auth_token)
        ready = threading.Event()

        def run():
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.server.start())
            ready.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        assert ready.wait(10)

    @property
    def port(self):
        return self.server.port

    def stop(self):
        asyncio.run_coroutine_threadsafe(self.server.stop(),
                                         self.loop).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.service.shutdown()


@pytest.fixture()
def harness():
    harness = _ServerHarness(CodecService(workers=0, max_pending=4))
    yield harness
    harness.stop()


class TestTransport:
    def test_round_trip_matches_one_shot(self, harness):
        frames = _frames(4, seed=9)
        reference = _one_shot(frames, qp=10, resync_every=1)
        with ServiceClient(port=harness.port) as client:
            stream = client.open_stream(StreamConfig(
                kind="encode", qp=10, resync_every=1, verify_decode=True))
            for start in range(0, 4, 2):
                client.submit_segment(stream, frames[start:start + 2])
            results = []
            while len(results) < 2:
                results.extend(client.collect(stream, timeout=10))
            assert all(result.ok for result in results)
            summary = client.close_stream(stream)
            assert summary["payload"] == reference
            assert summary["health"]["mbs_concealed"] == 0
            assert client.stats()["totals"]["streams_open"] == 0

    def test_wire_frame_round_trip_and_validation(self):
        from repro.serve import frame_to_wire
        frame = _frames(1)[0]
        back = wire_to_frame(frame_to_wire(frame))
        assert np.array_equal(back.y, frame.y)
        assert np.array_equal(back.v, frame.v)
        with pytest.raises(ServiceProtocolError):
            wire_to_frame({"width": 64, "height": 48, "data": "AAAA"})
        with pytest.raises(ServiceProtocolError):
            wire_to_frame({"width": 64})

    def test_protocol_errors_keep_the_connection_alive(self, harness):
        with socket.create_connection(("127.0.0.1", harness.port),
                                      timeout=10) as raw:
            handle = raw.makefile("rwb")
            for line, expect in [
                    (b"this is not json\n", "REPRO-SRV-PROTOCOL"),
                    (b'{"op": "nonsense"}\n', "REPRO-SRV-PROTOCOL"),
                    (b'{"op": "submit"}\n', "REPRO-SRV-PROTOCOL"),
                    (b'{"op": "collect", "stream": "ghost"}\n',
                     "REPRO-SRV-UNKNOWN"),
            ]:
                handle.write(line)
                handle.flush()
                response = json.loads(handle.readline())
                assert response == {**response, "ok": False, "code": expect}
            # after all that abuse the connection still serves good requests
            handle.write(b'{"op": "stats"}\n')
            handle.flush()
            assert json.loads(handle.readline())["ok"] is True

    def test_backpressure_code_crosses_the_wire(self, harness):
        frames = _frames(1)
        with ServiceClient(port=harness.port) as client:
            stream = client.open_stream(StreamConfig(kind="encode"))
            for _ in range(4):
                client.submit_segment(stream, frames)
            with pytest.raises(BackpressureReject):
                client.submit_segment(stream, frames)

    def test_disconnect_fault_aborts_the_connections_streams(self, harness):
        frames = _frames(1)
        with ServiceClient(port=harness.port) as client:
            stream = client.open_stream(StreamConfig(kind="encode"))
            client.submit_segment(stream, frames)
            # drop the connection before the next response is written
            # (p=1 fires on every consult regardless of the request count)
            faults.install(f"disconnect:{stream}:p=1")
            with pytest.raises(ServiceUnavailable):
                client.collect(stream)
        faults.clear()
        # the dropped connection's stream was aborted server-side
        deadline = 50
        with ServiceClient(port=harness.port) as client:
            for _ in range(deadline):
                if client.stats()["totals"]["streams_open"] == 0:
                    break
                import time
                time.sleep(0.1)
            assert client.stats()["totals"]["streams_open"] == 0

    def test_client_disconnect_without_close_aborts_streams(self, harness):
        frames = _frames(1)
        client = ServiceClient(port=harness.port)
        stream = client.open_stream(StreamConfig(kind="encode"))
        client.submit_segment(stream, frames)
        client.close()          # vanish without closing the stream
        import time
        with ServiceClient(port=harness.port) as probe:
            for _ in range(50):
                if probe.stats()["totals"]["streams_open"] == 0:
                    break
                time.sleep(0.1)
            assert probe.stats()["totals"]["streams_open"] == 0


class TestTransportAuth:
    """Shared-token HMAC challenge–response on the serving socket."""

    TOKEN = "open-sesame"

    @pytest.fixture()
    def auth_harness(self):
        harness = _ServerHarness(CodecService(workers=0, max_pending=4),
                                 auth_token=self.TOKEN)
        yield harness
        harness.stop()

    def test_right_token_serves_normally(self, auth_harness):
        frames = _frames(2, seed=13)
        with ServiceClient(port=auth_harness.port,
                           auth_token=self.TOKEN) as client:
            stream = client.open_stream(StreamConfig(kind="encode",
                                                     qp=10))
            client.submit_segment(stream, frames)
            while not client.collect(stream, timeout=10):
                pass
            summary = client.close_stream(stream)
            assert summary["payload"] == _one_shot(frames, qp=10)

    def test_wrong_token_is_a_structured_rejection(self, auth_harness):
        with pytest.raises(ServiceAuthError):
            ServiceClient(port=auth_harness.port, auth_token="nope")

    def test_missing_token_is_a_structured_rejection(self, auth_harness):
        with pytest.raises(ServiceAuthError):
            ServiceClient(port=auth_harness.port)

    def test_ops_before_the_handshake_are_rejected(self, auth_harness):
        with socket.create_connection(("127.0.0.1", auth_harness.port),
                                      timeout=10) as raw:
            handle = raw.makefile("rwb")
            handle.write(b'{"op": "stats"}\n')
            handle.flush()
            response = json.loads(handle.readline())
            assert response["ok"] is False
            assert response["code"] == ServiceAuthError.code
            # the rejection is structured, not a dropped connection:
            # the handshake still works on the same socket
            handle.write(b'{"op": "auth_challenge"}\n')
            handle.flush()
            assert json.loads(handle.readline())["ok"] is True

    def test_unauthenticated_server_ignores_tokens(self, harness):
        # no token on the server: clients with or without one both work
        with ServiceClient(port=harness.port,
                           auth_token="unneeded") as client:
            assert client.stats()["totals"]["streams_open"] == 0

"""Automatic custom-instruction extraction."""

import pytest

from repro.isa import Operation, vreg
from repro.kernels import KernelShape, build_getsad_kernel
from repro.program.builder import KernelBuilder
from repro.program.ir import BasicBlock
from repro.rfu.extraction import (
    MAX_INPUTS,
    CandidateConfiguration,
    extract_candidates,
    extract_from_program,
)
from repro.rfu.loop_model import InterpMode


def _repeated_pattern_block(repetitions=3):
    """A block repeating (a+b)^c three times with fresh operands."""
    kb = KernelBuilder("pattern")
    with kb.block("body"):
        for index in range(repetitions):
            a = kb.emit("movi", imm=index)
            b = kb.emit("movi", imm=index + 10)
            c = kb.emit("movi", imm=index + 20)
            total = kb.emit("add", a, b)
            kb.emit("xor", total, c)
    return kb.finish().block("body")


class TestBasics:
    def test_finds_repeated_pattern(self):
        candidates = extract_candidates(_repeated_pattern_block(),
                                        min_occurrences=3)
        assert candidates
        best = candidates[0]
        assert best.occurrences == 3
        assert "add" in best.opcodes or "xor" in best.opcodes

    def test_min_occurrences_filter(self):
        block = _repeated_pattern_block(repetitions=1)
        assert extract_candidates(block, min_occurrences=2) == []

    def test_empty_block(self):
        assert extract_candidates(BasicBlock("empty")) == []

    def test_memory_ops_never_collapse(self):
        kb = KernelBuilder("mem")
        p = kb.param("p")
        with kb.block("body"):
            for offset in (0, 4, 8):
                value = kb.emit("ldw", p, imm=offset, mem_tag=f"m{offset}")
                shifted = kb.emit("shri", value, imm=2)
                kb.emit("addi", shifted, imm=1)
        candidates = extract_candidates(kb.finish().block("body"))
        for candidate in candidates:
            assert "ldw" not in candidate.opcodes

    def test_input_limit_respected(self):
        candidates = extract_candidates(_repeated_pattern_block())
        for candidate in candidates:
            assert candidate.inputs <= MAX_INPUTS

    def test_saved_ops_formula(self):
        for candidate in extract_candidates(_repeated_pattern_block()):
            assert candidate.saved_ops \
                == candidate.occurrences * (candidate.size - 1)

    def test_ranking_is_by_saving(self):
        candidates = extract_candidates(_repeated_pattern_block())
        savings = [candidate.saved_ops for candidate in candidates]
        assert savings == sorted(savings, reverse=True)


class TestCommutativity:
    def test_swapped_commutative_operands_match(self):
        kb = KernelBuilder("comm")
        with kb.block("body"):
            a1, b1 = kb.emit("movi", imm=1), kb.emit("movi", imm=2)
            kb.emit("shri", kb.emit("add", a1, b1), imm=1)
            a2, b2 = kb.emit("movi", imm=3), kb.emit("movi", imm=4)
            kb.emit("shri", kb.emit("add", b2, a2), imm=1)  # swapped
        candidates = extract_candidates(kb.finish().block("body"),
                                        min_occurrences=2)
        pair = [c for c in candidates
                if set(c.opcodes) == {"add", "shri"} and c.size == 2]
        assert pair and pair[0].occurrences == 2

    def test_different_immediates_do_not_match(self):
        kb = KernelBuilder("imm")
        with kb.block("body"):
            a1 = kb.emit("movi", imm=1)
            kb.emit("shri", kb.emit("addi", a1, imm=5), imm=1)
            a2 = kb.emit("movi", imm=2)
            kb.emit("shri", kb.emit("addi", a2, imm=9), imm=1)  # other imm
        candidates = extract_candidates(kb.finish().block("body"),
                                        min_occurrences=2)
        assert not any(set(c.opcodes) == {"addi", "shri"} and c.size == 2
                       for c in candidates)


class TestOnGetSad:
    """The headline: extraction rediscovers the paper's configurations."""

    @pytest.fixture(scope="class")
    def diagonal_candidates(self):
        program = build_getsad_kernel("orig", KernelShape(1, InterpMode.HV))
        return extract_candidates(program.block("row_loop"))

    def test_finds_the_per_group_interpolation_cluster(self,
                                                       diagonal_candidates):
        best = diagonal_candidates[0]
        # one cluster per 4-pixel group: 4 occurrences, few inputs,
        # dominated by the widening interpolation arithmetic
        assert best.occurrences == 4
        assert best.inputs <= 6
        assert {"add2", "pack4", "shri"} <= set(best.opcodes)
        assert best.size >= 15

    def test_extraction_covers_most_of_the_interpolation(self,
                                                         diagonal_candidates):
        program = build_getsad_kernel("orig", KernelShape(1, InterpMode.HV))
        block_ops = len(program.block("row_loop").ops)
        assert diagonal_candidates[0].saved_ops > block_ops // 2

    def test_full_pel_kernel_offers_less(self):
        diag = extract_candidates(build_getsad_kernel(
            "orig", KernelShape(1, InterpMode.HV)).block("row_loop"))
        full = extract_candidates(build_getsad_kernel(
            "orig", KernelShape(1, InterpMode.FULL)).block("row_loop"))
        best_full = full[0].saved_ops if full else 0
        assert diag[0].saved_ops > best_full

    def test_program_level_api(self):
        program = build_getsad_kernel("orig", KernelShape(2, InterpMode.H))
        per_block = extract_from_program(program)
        assert "row_loop" in per_block
        assert per_block["row_loop"]

"""The MPEG4-SP encoder driver."""

import numpy as np
import pytest

from repro.codec.costmodel import CycleCostModel, WorkCounts
from repro.codec.encoder import EncoderConfig, Mpeg4Encoder
from repro.codec.motion import ThreeStepSearch
from repro.errors import CodecError


@pytest.fixture(scope="module")
def report(request):
    frames = request.getfixturevalue("tiny_sequence")
    return Mpeg4Encoder(EncoderConfig(strategy=ThreeStepSearch(2))) \
        .encode(frames)


class TestStructure:
    def test_first_frame_is_intra(self, report):
        assert report.frame_stats[0].frame_type == "I"
        assert report.frame_stats[0].intra_mbs == 99
        assert report.frame_stats[0].getsad_calls == 0

    def test_following_frames_are_inter(self, report):
        for stats in report.frame_stats[1:]:
            assert stats.frame_type == "P"
            assert stats.getsad_calls > 0

    def test_one_reconstruction_per_frame(self, report, tiny_sequence):
        assert len(report.reconstructed) == len(tiny_sequence)

    def test_motion_vectors_per_p_frame(self, report):
        assert report.motion_vectors[0] == []
        for mvs in report.motion_vectors[1:]:
            assert len(mvs) == 99

    def test_empty_sequence_rejected(self):
        with pytest.raises(CodecError):
            Mpeg4Encoder().encode([])


class TestQuality:
    def test_reconstruction_tracks_source(self, report, tiny_sequence):
        for stats in report.frame_stats:
            assert stats.psnr_y > 30.0  # easy content at Q=10

    def test_reconstruction_is_valid_uint8(self, report):
        for frame in report.reconstructed:
            assert frame.y.dtype == np.uint8

    def test_inter_frames_cost_fewer_bits_than_intra(self, report):
        intra_bits = report.frame_stats[0].bits
        for stats in report.frame_stats[1:]:
            assert stats.bits < intra_bits

    def test_total_bits_sums_frames(self, report):
        assert report.total_bits == sum(s.bits for s in report.frame_stats)


class TestTraceAndWork:
    def test_trace_covers_all_p_frames(self, report, tiny_sequence):
        assert report.trace.frames() == list(range(1, len(tiny_sequence)))

    def test_trace_calls_match_frame_stats(self, report):
        by_frame = report.trace.split_by_frame()
        for stats in report.frame_stats[1:]:
            assert len(by_frame[stats.index]) == stats.getsad_calls

    def test_diagonal_fraction_near_paper(self, report):
        # three-step(2) + 8 half-sample refinements: ~4/25 diagonal
        assert 0.10 <= report.trace.diagonal_fraction() <= 0.22

    def test_work_counts_consistent(self, report, tiny_sequence):
        work = report.work
        frames = len(tiny_sequence)
        assert work.frames == frames
        assert work.macroblocks == 99 * frames
        # every macroblock codes 4 luma + 2 chroma blocks
        assert work.dct_blocks == 6 * 99 * frames
        assert work.quant_blocks == work.dct_blocks
        assert work.recon_blocks == work.dct_blocks
        assert work.idct_blocks <= work.dct_blocks
        assert work.mc_full_mbs + work.mc_halfpel_mbs \
            == sum(s.inter_mbs for s in report.frame_stats)

    def test_intra_fallback_triggers_on_hostile_content(self):
        rng = np.random.default_rng(0)
        from repro.codec.frame import YuvFrame
        noise = [YuvFrame(rng.integers(0, 256, (144, 176), dtype=np.uint8),
                          np.full((72, 88), 128, dtype=np.uint8),
                          np.full((72, 88), 128, dtype=np.uint8))
                 for _ in range(2)]
        config = EncoderConfig(strategy=ThreeStepSearch(2),
                               intra_sad_threshold=1000)
        report = Mpeg4Encoder(config).encode(noise)
        assert report.frame_stats[1].intra_mbs > 0


class TestGopStructure:
    def test_periodic_intra_frames(self, tiny_sequence):
        report = Mpeg4Encoder(EncoderConfig(strategy=ThreeStepSearch(2),
                                            gop_size=2)) \
            .encode(tiny_sequence)
        types = [stats.frame_type for stats in report.frame_stats]
        assert types == ["I", "P", "I"]

    def test_intra_frames_make_no_getsad_calls(self, tiny_sequence):
        report = Mpeg4Encoder(EncoderConfig(strategy=ThreeStepSearch(2),
                                            gop_size=2)) \
            .encode(tiny_sequence)
        for stats in report.frame_stats:
            if stats.frame_type == "I":
                assert stats.getsad_calls == 0

    def test_gop_stream_decodes_exactly(self, tiny_sequence):
        import numpy as np
        from repro.codec import decode_sequence
        report = Mpeg4Encoder(EncoderConfig(strategy=ThreeStepSearch(2),
                                            gop_size=2)) \
            .encode(tiny_sequence)
        decoded = decode_sequence(report.coded)
        for dec, rec in zip(decoded, report.reconstructed):
            assert np.array_equal(dec.y, rec.y)


class TestCostModel:
    def test_linear_in_work(self):
        model = CycleCostModel()
        work = WorkCounts(dct_blocks=2, frames=1)
        double = WorkCounts(dct_blocks=4, frames=2)
        assert model.non_me_cycles(double) == 2 * model.non_me_cycles(work)

    def test_merge_adds_fields(self):
        a = WorkCounts(dct_blocks=1, frames=1)
        b = WorkCounts(dct_blocks=2, coded_symbols=5)
        a.merge(b)
        assert a.dct_blocks == 3
        assert a.coded_symbols == 5
        assert a.frames == 1

    def test_empty_work_costs_nothing(self):
        assert CycleCostModel().non_me_cycles(WorkCounts()) == 0

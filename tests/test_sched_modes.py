"""Tests of the scheduling tiers: paper-mode pinning, seeded sweeps,
modulo scheduling, and the scheduler correctness fixes that rode along.

The paper-identity test hashes the register-allocated schedule of every
shipped kernel (64 GetSad shapes, 16 MC shapes, the DCT) and compares it
against digests captured from the pre-PR scheduler: ``--sched-mode paper``
must stay bundle-for-bundle, register-for-register identical forever.
"""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ScheduleError
from repro.isa import Operation, vreg
from repro.isa.opcodes import Resource
from repro.kernels.getsad import (
    VARIANTS,
    KernelShape,
    build_getsad_kernel,
    kernel_rfu_issue_width,
)
from repro.kernels import KernelLibrary
from repro.kernels.dct_kernel import build_dct_kernel
from repro.kernels.mc import McKernelLibrary, build_mc_kernel
from repro.machine import MachineConfig, compile_kernel
from repro.program import (
    BasicBlock,
    LivenessTracker,
    Program,
    schedule_block,
    schedule_program,
    sweep_schedule_block,
    sweep_stats,
    verify_block_schedule,
)
from repro.program.priorities import clear_sweep_memo, reset_sweep_stats
from repro.rfu import RfuUnit, standard_registry
from repro.rfu.loop_model import InterpMode


def _getsad_latency_of():
    rfu = RfuUnit(standard_registry(), beta=1.0)

    def latency_of(op):
        if op.spec.latency is not None:
            return op.spec.latency
        if op.opcode in ("rfuinit", "rfusend", "rfupft"):
            return 1
        return rfu.latency(op.imm)

    return latency_of


# ---------------------------------------------------------------------------
# satellite 1: custom capacity dicts fail with a structured error
# ---------------------------------------------------------------------------

class TestCapacityValidation:
    def test_missing_resource_raises_schedule_error(self):
        a = vreg("a")
        b = vreg("b")
        block = BasicBlock("mulblock", [
            Operation("movi", dest=a, imm=3),
            Operation("mul", dest=b, srcs=(a, a)),
        ])
        with pytest.raises(ScheduleError) as excinfo:
            schedule_block(block, capacity={Resource.ALU: 4})
        message = str(excinfo.value)
        assert "mul" in message
        assert "mulblock" in message
        assert "capacity map" in message

    def test_full_capacity_dict_still_schedules(self):
        a = vreg("a")
        block = BasicBlock("ok", [Operation("movi", dest=a, imm=1)])
        scheduled = schedule_block(block, capacity={Resource.ALU: 1})
        assert scheduled.length == 1


# ---------------------------------------------------------------------------
# satellite 2: pressure_limit is forwarded end-to-end
# ---------------------------------------------------------------------------

def _wide_block():
    """12 independent defs consumed by a final accumulator chain: a tight
    pressure limit must defer the defs and stretch the schedule."""
    defs = [vreg(f"d{i}") for i in range(12)]
    ops = [Operation("movi", dest=d, imm=i) for i, d in enumerate(defs)]
    acc = defs[0]
    for d in defs[1:]:
        nacc = vreg()
        ops.append(Operation("add", dest=nacc, srcs=(acc, d)))
        acc = nacc
    return BasicBlock("wide", ops), acc


class TestPressureLimitForwarding:
    def test_limit_changes_the_schedule(self):
        block, _ = _wide_block()
        relaxed = schedule_block(block, pressure_limit=44)
        tight = schedule_block(block, pressure_limit=2)
        assert tight.length > relaxed.length
        verify_block_schedule(block, tight.bundles)

    def test_schedule_program_forwards_the_limit(self):
        block, result = _wide_block()
        program = Program("wide", [block], persistent={result},
                          result=result)
        for limit in (44, 2):
            via_program = schedule_program(program, pressure_limit=limit)
            via_block = schedule_block(block, pressure_limit=limit)
            assert via_program.blocks[0].length == via_block.length

    def test_machine_config_exposes_the_limit(self):
        block, result = _wide_block()
        program = Program("wide", [block], persistent={result},
                          result=result)
        tight = compile_kernel(
            program, config=MachineConfig(pressure_limit=2))
        relaxed = compile_kernel(program, config=MachineConfig())
        assert tight.static_length > relaxed.static_length


# ---------------------------------------------------------------------------
# satellite 3: the live counter never goes negative
# ---------------------------------------------------------------------------

@st.composite
def _random_ops(draw):
    """A random SSA-ish op list with shared sources and live-in reads."""
    live_in = [vreg(f"in{i}") for i in range(draw(st.integers(1, 3)))]
    available = list(live_in)
    ops = []
    for index in range(draw(st.integers(1, 25))):
        dest = vreg(f"t{index}")
        nsrcs = draw(st.integers(0, 2))
        srcs = tuple(available[draw(st.integers(0, len(available) - 1))]
                     for _ in range(nsrcs))
        opcode = "movi" if not srcs else ("mov" if len(srcs) == 1 else "add")
        ops.append(Operation(opcode, dest=dest, srcs=srcs,
                             imm=0 if not srcs else None))
        available.append(dest)
    return ops


class TestLivenessTracker:
    @settings(max_examples=60, deadline=None)
    @given(_random_ops())
    def test_live_never_negative(self, ops):
        tracker = LivenessTracker(ops)
        for op in ops:
            closes, opens = tracker.pressure_delta(op)
            before = tracker.live
            tracker.issue(op)
            assert tracker.live >= 0
            assert tracker.live == before - closes + opens

    def test_live_in_consumption_does_not_underflow(self):
        # consuming a value no issued op defined must not go negative:
        # this is exactly what the old duplicated emergency-path
        # bookkeeping got wrong
        live_in = vreg("param")
        op = Operation("mov", dest=vreg("t"), srcs=(live_in,))
        tracker = LivenessTracker([op])
        tracker.issue(op)
        assert tracker.live == 0


# ---------------------------------------------------------------------------
# satellite 4: same-cycle slot fill
# ---------------------------------------------------------------------------

class TestSameCycleFill:
    def test_fill_never_worse_and_shortens_mc_loop(self):
        program = build_mc_kernel(KernelShape(0, InterpMode.FULL))
        loop = next(b for b in program.blocks if "loop" in b.label)
        paper = schedule_block(loop)
        filled = schedule_block(loop, fill_same_cycle=True)
        verify_block_schedule(loop, filled.bundles)
        assert filled.length < paper.length

    def test_paper_mode_never_fills(self):
        # the flag must stay off by default: paper-mode digests pin this
        program = build_mc_kernel(KernelShape(0, InterpMode.FULL))
        loop = next(b for b in program.blocks if "loop" in b.label)
        assert schedule_block(loop).length == 10


# ---------------------------------------------------------------------------
# paper-mode pinning: register-allocated schedule digests of every kernel
# ---------------------------------------------------------------------------

PAPER_DIGESTS = {
    "dct8x8": "c9c8ae1472db039f",
    "getsad_a1_align0_full": "34034422e22dbee8",
    "getsad_a1_align0_h": "6dbbf337790ec627",
    "getsad_a1_align0_hv": "188d7467d40216a2",
    "getsad_a1_align0_v": "cf4df731273adfaf",
    "getsad_a1_align1_full": "a26425f4058771fe",
    "getsad_a1_align1_h": "98ddd1f20ce58ae4",
    "getsad_a1_align1_hv": "87baff2662990393",
    "getsad_a1_align1_v": "fefdf7d52f3f4fd1",
    "getsad_a1_align2_full": "f5a64a6654e2bb37",
    "getsad_a1_align2_h": "96d13d0ee5057880",
    "getsad_a1_align2_hv": "9dd21c290d173868",
    "getsad_a1_align2_v": "b7c01b37238733e5",
    "getsad_a1_align3_full": "f9753a98259ee5a0",
    "getsad_a1_align3_h": "02efb35998193caf",
    "getsad_a1_align3_hv": "71df95cf1137fd9b",
    "getsad_a1_align3_v": "7da36e963339a423",
    "getsad_a2_align0_full": "34034422e22dbee8",
    "getsad_a2_align0_h": "6dbbf337790ec627",
    "getsad_a2_align0_hv": "39e423b2ad5da8de",
    "getsad_a2_align0_v": "cf4df731273adfaf",
    "getsad_a2_align1_full": "a26425f4058771fe",
    "getsad_a2_align1_h": "98ddd1f20ce58ae4",
    "getsad_a2_align1_hv": "43a89fc4eed40edc",
    "getsad_a2_align1_v": "fefdf7d52f3f4fd1",
    "getsad_a2_align2_full": "f5a64a6654e2bb37",
    "getsad_a2_align2_h": "96d13d0ee5057880",
    "getsad_a2_align2_hv": "2a05564de493b17f",
    "getsad_a2_align2_v": "b7c01b37238733e5",
    "getsad_a2_align3_full": "f9753a98259ee5a0",
    "getsad_a2_align3_h": "02efb35998193caf",
    "getsad_a2_align3_hv": "c6394e01fc4b690b",
    "getsad_a2_align3_v": "7da36e963339a423",
    "getsad_a3_align0_full": "34034422e22dbee8",
    "getsad_a3_align0_h": "6dbbf337790ec627",
    "getsad_a3_align0_hv": "24d1331f01972003",
    "getsad_a3_align0_v": "cf4df731273adfaf",
    "getsad_a3_align1_full": "a26425f4058771fe",
    "getsad_a3_align1_h": "98ddd1f20ce58ae4",
    "getsad_a3_align1_hv": "0d7e0114a96b5de6",
    "getsad_a3_align1_v": "fefdf7d52f3f4fd1",
    "getsad_a3_align2_full": "f5a64a6654e2bb37",
    "getsad_a3_align2_h": "96d13d0ee5057880",
    "getsad_a3_align2_hv": "16eb94cd2a1a07cb",
    "getsad_a3_align2_v": "b7c01b37238733e5",
    "getsad_a3_align3_full": "f9753a98259ee5a0",
    "getsad_a3_align3_h": "02efb35998193caf",
    "getsad_a3_align3_hv": "35f3239e7dc6813a",
    "getsad_a3_align3_v": "7da36e963339a423",
    "getsad_orig_align0_full": "34034422e22dbee8",
    "getsad_orig_align0_h": "6dbbf337790ec627",
    "getsad_orig_align0_hv": "f053b4282120dcd3",
    "getsad_orig_align0_v": "cf4df731273adfaf",
    "getsad_orig_align1_full": "a26425f4058771fe",
    "getsad_orig_align1_h": "98ddd1f20ce58ae4",
    "getsad_orig_align1_hv": "98e70668ef29df02",
    "getsad_orig_align1_v": "fefdf7d52f3f4fd1",
    "getsad_orig_align2_full": "f5a64a6654e2bb37",
    "getsad_orig_align2_h": "96d13d0ee5057880",
    "getsad_orig_align2_hv": "f38e649c28facea2",
    "getsad_orig_align2_v": "b7c01b37238733e5",
    "getsad_orig_align3_full": "f9753a98259ee5a0",
    "getsad_orig_align3_h": "02efb35998193caf",
    "getsad_orig_align3_hv": "460139b9695bf129",
    "getsad_orig_align3_v": "7da36e963339a423",
    "mc_align0_full": "8032bbafdcbcef73",
    "mc_align0_h": "d2285fd02079b234",
    "mc_align0_hv": "71b90532740f8eb0",
    "mc_align0_v": "ae6e544e5a58c034",
    "mc_align1_full": "226b0eb162be18a1",
    "mc_align1_h": "92bf25927446bbb7",
    "mc_align1_hv": "137f10d60dc99536",
    "mc_align1_v": "18be84a7e2baa09e",
    "mc_align2_full": "437e8ebe39783857",
    "mc_align2_h": "89dabbcd28d361ad",
    "mc_align2_hv": "d81b74a44b5cdf10",
    "mc_align2_v": "ee4ed7afd5b62220",
    "mc_align3_full": "96d8cebd8aedf012",
    "mc_align3_h": "f2766b7e66b3e4ec",
    "mc_align3_hv": "2eef0faef94f8025",
    "mc_align3_v": "ac5adb663678776c",
}


def _schedule_digest(loaded):
    lines = []
    for block in loaded.scheduled.blocks:
        lines.append(f"=={block.label}==")
        lines.extend(repr(bundle) for bundle in block.bundles)
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()[:16]


class TestPaperModePinning:
    def test_every_shipped_kernel_is_bundle_identical(self):
        digests = {}
        for variant in VARIANTS:
            config = MachineConfig().with_rfu_issue(
                kernel_rfu_issue_width(variant))
            for alignment in range(4):
                for mode in InterpMode:
                    shape = KernelShape(alignment, mode)
                    loaded = compile_kernel(
                        build_getsad_kernel(variant, shape),
                        RfuUnit(standard_registry(), beta=1.0), config)
                    digests[f"getsad_{variant}_{shape.label}"] = \
                        _schedule_digest(loaded)
        for alignment in range(4):
            for mode in InterpMode:
                shape = KernelShape(alignment, mode)
                digests[f"mc_{shape.label}"] = _schedule_digest(
                    compile_kernel(build_mc_kernel(shape)))
        digests["dct8x8"] = _schedule_digest(
            compile_kernel(build_dct_kernel()))
        mismatches = {key: (digests[key], PAPER_DIGESTS[key])
                      for key in PAPER_DIGESTS
                      if digests.get(key) != PAPER_DIGESTS[key]}
        assert not mismatches, (
            f"paper-mode schedules drifted from the pinned baseline: "
            f"{mismatches}")

    def test_unknown_mode_rejected(self):
        block, result = _wide_block()
        program = Program("wide", [block], persistent={result},
                          result=result)
        with pytest.raises(ScheduleError):
            schedule_program(program, mode="aggressive")


# ---------------------------------------------------------------------------
# sweep tier: determinism, legality, caching
# ---------------------------------------------------------------------------

class TestSweepTier:
    def _gate_setup(self):
        program = build_getsad_kernel("a1", KernelShape(0, InterpMode.HV))
        config = MachineConfig().with_rfu_issue(kernel_rfu_issue_width("a1"))
        return program, config, _getsad_latency_of()

    def test_deterministic_and_never_worse(self):
        program, config, latency_of = self._gate_setup()
        for block in program.blocks:
            paper = schedule_block(block, latency_of, config.capacity,
                                   config.issue_width)
            first = sweep_schedule_block(block, latency_of, config.capacity,
                                         config.issue_width, seeds=8)
            second = sweep_schedule_block(block, latency_of, config.capacity,
                                          config.issue_width, seeds=8)
            verify_block_schedule(block, first.bundles, latency_of,
                                  config.capacity, config.issue_width)
            assert [repr(b) for b in first.bundles] == \
                [repr(b) for b in second.bundles]
            assert first.length <= paper.length

    def test_warm_disk_cache_hits(self, tmp_path):
        program, config, latency_of = self._gate_setup()

        def one_run():
            clear_sweep_memo()
            reset_sweep_stats()
            lengths = [sweep_schedule_block(
                block, latency_of, config.capacity, config.issue_width,
                seeds=8, cache_dir=tmp_path).length
                for block in program.blocks]
            return lengths, sweep_stats()

        cold_lengths, cold = one_run()
        warm_lengths, warm = one_run()
        assert cold_lengths == warm_lengths
        assert cold["disk_hits"] == 0
        assert cold["misses"] == len(program.blocks)
        assert warm["disk_hits"] == len(program.blocks)
        assert warm["misses"] == 0


# ---------------------------------------------------------------------------
# modulo tier: functional equivalence on the core, speedup, fallbacks
# ---------------------------------------------------------------------------

class TestModuloTier:
    def test_getsad_faster_and_bit_exact(self):
        # KernelLibrary verifies every measured shape against the golden
        # SAD internally, so the comparison below only runs if both tiers
        # produced bit-exact kernels
        paper = KernelLibrary("a2", sched_mode="paper")
        modulo = KernelLibrary("a2", sched_mode="modulo")
        shape = KernelShape(0, InterpMode.HV)
        assert modulo.timing(shape).verified_sad == \
            paper.timing(shape).verified_sad
        assert modulo.static_cycles(0, InterpMode.HV) < \
            paper.static_cycles(0, InterpMode.HV)

    def test_mc_faster_and_bit_exact(self):
        # McKernelLibrary raises if the interpolated block diverges
        paper = McKernelLibrary(sched_mode="paper")
        modulo = McKernelLibrary(sched_mode="modulo")
        assert modulo.static_cycles(0, InterpMode.FULL) < \
            paper.static_cycles(0, InterpMode.FULL)

    def test_gate_kernel_achieves_20_percent(self):
        # the issue's acceptance target, also gated in bench_micro.py
        program = build_getsad_kernel("a1", KernelShape(0, InterpMode.HV))
        config = MachineConfig().with_rfu_issue(kernel_rfu_issue_width("a1"))
        latency_of = _getsad_latency_of()
        paper = schedule_program(program, latency_of, config.capacity,
                                 config.issue_width)
        modulo = schedule_program(program, latency_of, config.capacity,
                                  config.issue_width, mode="modulo")
        loop_len = next(b.length for b in paper.blocks
                        if "loop" in b.label)
        pipelined = {loop.label: loop for loop in modulo.pipelined}
        loop = next(iter(pipelined.values()))
        assert loop.ii <= 0.8 * loop_len

    def test_non_loop_program_falls_back_to_paper(self):
        block, result = _wide_block()
        program = Program("wide", [block], persistent={result},
                          result=result)
        paper = schedule_program(program)
        modulo = schedule_program(program, mode="modulo")
        assert [repr(b.bundles) for b in paper.blocks] == \
            [repr(b.bundles) for b in modulo.blocks]
        assert not modulo.pipelined

    def test_register_fallback_still_correct(self):
        # orig align0 HV overlaps too many temporaries to allocate when
        # pipelined; compile_kernel must fall back and stay bit-exact
        # (KernelLibrary's internal golden check would raise otherwise)
        library = KernelLibrary("orig", sched_mode="modulo")
        paper = KernelLibrary("orig", sched_mode="paper")
        shape = KernelShape(0, InterpMode.HV)
        assert library.timing(shape).verified_sad == \
            paper.timing(shape).verified_sad


# ---------------------------------------------------------------------------
# every tier produces legal schedules on random DAGs
# ---------------------------------------------------------------------------

class TestAllModesLegal:
    @settings(max_examples=40, deadline=None)
    @given(_random_ops(), st.integers(0, 7))
    def test_paper_fill_sweep_legal(self, ops, seed):
        block = BasicBlock("rand", ops)
        for kwargs in ({}, {"fill_same_cycle": True}):
            scheduled = schedule_block(block, **kwargs)
            verify_block_schedule(block, scheduled.bundles)
        swept = sweep_schedule_block(block, seeds=4)
        verify_block_schedule(block, swept.bundles)

    @settings(max_examples=20, deadline=None)
    @given(_random_ops())
    def test_modulo_on_non_loops_is_legal(self, ops):
        block = BasicBlock("rand", ops)
        program = Program("rand", [block])
        scheduled = schedule_program(program, mode="modulo")
        for sblock in scheduled.blocks:
            verify_block_schedule(block, sblock.bundles)

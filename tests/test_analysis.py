"""Static schedule analysis (utilisation, bounds, occupancy)."""

import pytest

from repro.isa import Operation, Resource, vreg
from repro.kernels import KernelLibrary, KernelShape
from repro.machine import compile_kernel
from repro.program import BasicBlock, Program, schedule_program
from repro.program.analysis import (
    analyse_block,
    analyse_program,
    occupancy_chart,
    utilisation_report,
)
from repro.program.builder import KernelBuilder
from repro.program.scheduler import schedule_block
from repro.rfu.loop_model import InterpMode


def _scheduled_simple():
    ops = [Operation("movi", dest=vreg(), imm=i) for i in range(8)]
    block = BasicBlock("b", ops)
    return schedule_block(block), block


class TestBlockAnalysis:
    def test_counts_and_ipc(self):
        scheduled, source = _scheduled_simple()
        analysis = analyse_block(scheduled, source)
        assert analysis.ops == 8
        assert analysis.cycles == 2          # 8 independent ALU ops, 4-wide
        assert analysis.ipc == 4.0
        assert analysis.slot_utilisation == 1.0

    def test_resource_bound(self):
        scheduled, source = _scheduled_simple()
        analysis = analyse_block(scheduled, source)
        assert analysis.resource_bound == 2  # 8 ALU ops / 4 ALUs
        assert analysis.bottleneck() is Resource.ALU

    def test_critical_path_bound(self):
        a = vreg("a")
        chain = [Operation("movi", dest=a, imm=0)]
        prev = a
        for _ in range(5):
            nxt = vreg()
            chain.append(Operation("addi", dest=nxt, srcs=(prev,), imm=1))
            prev = nxt
        block = BasicBlock("chain", chain)
        analysis = analyse_block(schedule_block(block), block)
        assert analysis.critical_path == 6
        assert analysis.schedule_efficiency == 1.0  # provably optimal

    def test_lsu_bottleneck_detected(self):
        p = vreg("p")
        ops = [Operation("ldw", dest=vreg(), srcs=(p,), imm=4 * i,
                         mem_tag=f"m{i}") for i in range(6)]
        block = BasicBlock("loads", ops)
        analysis = analyse_block(schedule_block(block), block)
        assert analysis.bottleneck() is Resource.LSU
        assert analysis.resource_bound >= 6


class TestProgramAnalysis:
    def test_per_block_entries(self):
        kb = KernelBuilder("k")
        with kb.block("one"):
            kb.emit("movi", imm=1)
        with kb.block("two"):
            kb.emit("movi", imm=2)
        analyses = analyse_program(schedule_program(kb.finish()))
        assert [a.label for a in analyses] == ["one", "two"]

    def test_getsad_kernel_is_well_scheduled(self):
        """The HV row body must reach a VLIW-class schedule: within 1.5x of
        its lower bound and above 2 IPC."""
        library = KernelLibrary("orig")
        loaded = library.loaded(KernelShape(1, InterpMode.HV))
        analyses = analyse_program(loaded.scheduled)
        row = next(a for a in analyses if a.label == "row_loop")
        assert row.ipc > 2.0
        assert row.schedule_efficiency > 0.65


class TestRendering:
    def test_occupancy_chart_glyphs(self):
        scheduled, _ = _scheduled_simple()
        chart = occupancy_chart(scheduled)
        assert "A A A A" in chart
        assert chart.count("\n") == scheduled.length

    def test_empty_slots_rendered_as_dots(self):
        block = BasicBlock("b", [Operation("movi", dest=vreg(), imm=0)])
        chart = occupancy_chart(schedule_block(block))
        assert "A . . ." in chart

    def test_utilisation_report_lines(self):
        kb = KernelBuilder("k")
        with kb.block("body"):
            for i in range(6):
                kb.emit("movi", imm=i)
        report = utilisation_report(schedule_program(kb.finish()))
        assert "body" in report
        assert "IPC" in report

    def test_cli_stats_flag(self, tmp_path, capsys):
        from repro.__main__ import main
        source = tmp_path / "k.s"
        source.write_text("""
kernel tiny
params p
block b:
    ldw t = p, #0
    addi u = t, #1
result u
""")
        assert main(["schedule", str(source), "--stats"]) == 0
        out = capsys.readouterr().out
        assert "utilisation" in out
        assert "occupancy" in out

"""The multi-host work-stealing sweep: protocol, resilience, identity.

The load-bearing guarantees:

* a loopback fleet resolves every cell and the orchestrator's
  deterministic artifacts are **byte-identical** to a serial sweep —
  clean, under injected worker deaths, and with workers joining
  mid-sweep;
* a connection lost with cells leased gets them requeued at attempt + 1
  (``worker_lost``), and repeated losses degrade to serial in-process
  execution instead of hanging;
* an injected ``dropresult`` (cell finished, connection dropped before
  the report) is recovered from the shared cache without re-execution
  (``dist_cache_hit``);
* a leased cell whose holder stops heartbeating is revoked and requeued
  at attempt + 1 (``lease_expired``) even while the TCP connection stays
  open — a hung worker is handled exactly like a dead one, and its
  straggler result is absorbed by first-result-wins dedup;
* with a shared token configured, hello frames must prove knowledge of
  it (HMAC challenge–response); mismatches get the structured
  ``REPRO-DIST-AUTH`` code, never a silent drop;
* protocol misuse gets a typed ``REPRO-DIST-PROTOCOL`` reply, never a
  dead connection.
"""

import json
import threading

import pytest

from repro import faults, supervise
from repro.core.exploration import ExplorationConfig
from repro.errors import (
    DistAuthError,
    DistProtocolError,
    ExperimentError,
    LeaseExpired,
)
from repro.experiments.workload import workload_fingerprint
from repro.sweep import (
    ResiliencePolicy,
    SweepCache,
    SweepConfig,
    cell_code_versions,
    cell_key,
    read_events,
    run_sweep,
)
from repro.sweep.distributed import (
    WorkerClient,
    parse_bind,
    run_distributed,
    run_worker,
)

FRAMES = 3

#: cheap deterministic cells: figures replay recorded traces
CELLS = ["figure1", "figure3"]


@pytest.fixture(autouse=True)
def _clean_fault_state():
    faults.clear()
    faults._FORCED_WORKER = False   # run_worker marks the test process
    yield
    faults.clear()
    faults._FORCED_WORKER = False


def _collector():
    events = []
    lock = threading.Lock()

    def emit(kind, **fields):
        with lock:
            events.append({"event": kind, **fields})

    return events, emit


def _dist(tmp_path, items, workers=1, policy=None, worker_wait_s=10.0,
          ready_extra=None, **coordinator_extra):
    """Run ``items`` through a loopback coordinator with ``workers``
    in-process worker threads (joined before returning).  Extra keyword
    arguments (``heartbeat_s``, ``lease_timeout_s``, ``auth_token``)
    pass through to :func:`run_distributed`."""
    events, emit = _collector()
    cache = SweepCache(tmp_path / "cache")
    checkpoint = SweepCache(tmp_path / "checkpoint")
    workload = workload_fingerprint(ExplorationConfig(frames=FRAMES))
    names = [name for name, _ in items]
    versions = cell_code_versions(names)
    keys = {name: cell_key(name, workload, versions[name])
            for name in names}
    threads = []

    # ready() runs inside the coordinator's event loop: everything that
    # talks to it (workers, probes) must live on its own thread.  The
    # gate sequences them — the probe acts first, then workers drain.
    gate = threading.Event()
    if ready_extra is None:
        gate.set()

    def _probe(bound):
        try:
            ready_extra(bound)
        finally:
            gate.set()

    def _worker(bound, index):
        gate.wait(timeout=20)
        run_worker(bound[0], bound[1], label=f"t{index}",
                   out=lambda _: None)

    def ready(bound):
        if ready_extra is not None:
            thread = threading.Thread(target=_probe, args=(bound,),
                                      daemon=True)
            thread.start()
            threads.append(thread)
        for index in range(workers):
            thread = threading.Thread(target=_worker,
                                      args=(bound, index), daemon=True)
            thread.start()
            threads.append(thread)

    results, remaining, hosts = run_distributed(
        items, keys=keys, frames=FRAMES, seed=2002,
        policy=policy or ResiliencePolicy(), cache=cache,
        checkpoint=checkpoint, workload=workload,
        cell_versions=versions, host="127.0.0.1", port=0, emit=emit,
        worker_wait_s=worker_wait_s, ready=ready, **coordinator_extra)
    for thread in threads:
        thread.join(timeout=20)
    return results, remaining, hosts, events


class TestParseBind:
    def test_host_and_port(self):
        assert parse_bind("10.0.0.5:4000") == ("10.0.0.5", 4000)

    def test_bare_port_binds_loopback(self):
        assert parse_bind(":0") == ("127.0.0.1", 0)

    @pytest.mark.parametrize("bad", ["nope", "host:", ":port", ""])
    def test_bad_addresses_raise(self, bad):
        with pytest.raises(ExperimentError):
            parse_bind(bad)


class TestWorkStealing:
    def test_fleet_resolves_every_cell(self, tmp_path):
        items = [(name, 0) for name in CELLS]
        results, remaining, hosts, events = _dist(tmp_path, items,
                                                  workers=2)
        assert remaining == []
        assert set(results) == set(CELLS)
        assert all(results[name].ok for name in CELLS)
        assert sum(entry["cells"] for entry in hosts.values()) \
            == len(CELLS)
        joins = [e for e in events if e["event"] == "worker_join"]
        assert len(joins) == 2

    def test_results_match_serial_execution(self, tmp_path):
        from repro.sweep.executor import execute_cell
        items = [(name, 0) for name in CELLS]
        results, _, _, _ = _dist(tmp_path, items, workers=2)
        for name in CELLS:
            serial = execute_cell(name, FRAMES, 2002, 0, None)
            assert results[name].rendered == serial.rendered
            assert results[name].cycles == serial.cycles

    def test_worker_attribution_lands_on_results(self, tmp_path):
        items = [(name, 0) for name in CELLS]
        results, _, hosts, _ = _dist(tmp_path, items, workers=1)
        for name in CELLS:
            assert results[name].worker in hosts

    def test_lost_worker_requeues_at_next_attempt(self, tmp_path):
        lost = []

        def lease_and_vanish(bound):
            client = WorkerClient(bound[0], bound[1])
            client.request({"op": "hello", "worker": "vanisher"})
            lease = client.request({"op": "lease"})
            lost.append(lease["cell"])
            client.close()   # leased cell never reported

        items = [(name, 0) for name in CELLS]
        results, remaining, _, events = _dist(
            tmp_path, items, workers=1, ready_extra=lease_and_vanish)
        assert remaining == []
        assert set(results) == set(CELLS)
        losses = [e for e in events if e["event"] == "worker_lost"]
        assert losses and losses[0]["worker"] == "vanisher"
        assert losses[0]["requeued"] == lost
        # the requeued cell ran at attempt 1, not 0
        assert results[lost[0]].attempts == 2

    def test_no_workers_degrades_with_full_remainder(self, tmp_path):
        items = [(name, 0) for name in CELLS]
        results, remaining, _, events = _dist(tmp_path, items, workers=0,
                                              worker_wait_s=0.3)
        assert results == {}
        assert remaining == items
        assert not any(e["event"] == "worker_lost" for e in events)

    def test_dropresult_is_recovered_from_the_shared_cache(self, tmp_path):
        faults.install(f"dropresult:{CELLS[0]}")
        items = [(name, 0) for name in CELLS]
        results, remaining, _, events = _dist(tmp_path, items, workers=1)
        assert remaining == []
        assert set(results) == set(CELLS)
        kinds = [e["event"] for e in events]
        assert "worker_lost" in kinds       # the injected drop
        assert "dist_cache_hit" in kinds    # recovery without re-execution
        hit = next(e for e in events if e["event"] == "dist_cache_hit")
        assert hit["cell"] == CELLS[0]


class TestLeases:
    def test_expired_lease_requeues_without_disconnect(self, tmp_path):
        held = {}
        release = threading.Event()

        def lease_and_freeze(bound):
            client = WorkerClient(bound[0], bound[1])
            client.request({"op": "hello", "worker": "sloth"})
            held["cell"] = client.request({"op": "lease"})["cell"]

            def hold():
                # keep the TCP connection healthy but never heartbeat:
                # revocation must not depend on the socket dying
                release.wait(timeout=30)
                client.close()

            threading.Thread(target=hold, daemon=True).start()

        items = [(name, 0) for name in CELLS]
        results, remaining, _, events = _dist(
            tmp_path, items, workers=1, ready_extra=lease_and_freeze,
            heartbeat_s=0.05, lease_timeout_s=0.4)
        release.set()
        assert remaining == []
        assert set(results) == set(CELLS)
        assert all(results[name].ok for name in CELLS)
        expiry = next(e for e in events if e["event"] == "lease_expired")
        assert expiry["cell"] == held["cell"]
        assert expiry["worker"] == "sloth"
        assert expiry["code"] == LeaseExpired.code
        assert expiry["since_beat_s"] >= expiry["budget_s"]
        # the revoked cell re-ran at attempt 1 on the live worker
        assert results[held["cell"]].attempts == 2

    def test_heartbeats_keep_slow_cells_leased(self, tmp_path):
        items = [(name, 0) for name in CELLS]
        results, remaining, _, events = _dist(
            tmp_path, items, workers=1,
            heartbeat_s=0.05, lease_timeout_s=0.3)
        assert remaining == []
        assert all(results[name].ok for name in CELLS)
        assert not any(e["event"] == "lease_expired" for e in events)
        assert all(results[name].attempts == 1 for name in CELLS)

    def test_injected_hang_is_revoked_and_stays_identical(self, tmp_path):
        from repro.sweep.executor import execute_cell
        faults.install(f"hang:{CELLS[0]}:times=1:delay=2")
        items = [(name, 0) for name in CELLS]
        results, remaining, _, events = _dist(
            tmp_path, items, workers=2,
            heartbeat_s=0.05, lease_timeout_s=0.4)
        assert remaining == []
        assert all(results[name].ok for name in CELLS)
        expiries = [e for e in events if e["event"] == "lease_expired"]
        assert expiries and expiries[0]["cell"] == CELLS[0]
        # whichever report landed first — the woken straggler's or the
        # attempt-1 re-lease's — the cell is identical to serial
        serial = execute_cell(CELLS[0], FRAMES, 2002, 0, None)
        assert results[CELLS[0]].rendered == serial.rendered


class TestAuth:
    def test_fleet_with_shared_token_drains(self, tmp_path, monkeypatch):
        monkeypatch.setenv(supervise.AUTH_ENV_VAR, "sesame")
        items = [(name, 0) for name in CELLS]
        results, remaining, _, _ = _dist(
            tmp_path, items, workers=1, auth_token="sesame")
        assert remaining == []
        assert all(results[name].ok for name in CELLS)

    def test_wrong_or_missing_proof_is_structured(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv(supervise.AUTH_ENV_VAR, "sesame")
        rejected = {}

        def bad_probe(bound):
            with WorkerClient(bound[0], bound[1]) as client:
                challenge = client.request(
                    {"op": "auth_challenge"})["challenge"]
                assert challenge
                with pytest.raises(DistAuthError):
                    client.request({
                        "op": "hello", "worker": "mallory",
                        "proof": supervise.auth_proof("wrong", challenge)})
                with pytest.raises(DistAuthError):
                    client.request({"op": "hello", "worker": "mallory"})
            rejected["ok"] = True

        results, remaining, _, _ = _dist(
            tmp_path, [(CELLS[0], 0)], workers=1,
            ready_extra=bad_probe, auth_token="sesame")
        assert rejected["ok"]
        assert remaining == []
        assert results[CELLS[0]].ok

    def test_mismatched_worker_exits_with_auth_status(self, tmp_path,
                                                      monkeypatch):
        monkeypatch.setenv(supervise.AUTH_ENV_VAR, "sesame")
        status = {}

        def doomed(bound):
            status["exit"] = run_worker(bound[0], bound[1], label="bad",
                                        auth_token="wrong",
                                        out=lambda _: None)

        _, remaining, _, _ = _dist(
            tmp_path, [(CELLS[0], 0)], workers=1, ready_extra=doomed,
            auth_token="sesame")
        assert status["exit"] == 4
        assert remaining == []


class TestProtocol:
    def _coordinator_probe(self, tmp_path, probe):
        """Run ``probe(bound)`` against a live coordinator that one real
        worker eventually drains."""
        outcome = {}

        def ready_extra(bound):
            outcome["value"] = probe(bound)

        _dist(tmp_path, [(CELLS[0], 0)], workers=1,
              ready_extra=ready_extra)
        return outcome["value"]

    def test_lease_before_hello_is_a_protocol_error(self, tmp_path):
        def probe(bound):
            with WorkerClient(bound[0], bound[1]) as client:
                with pytest.raises(DistProtocolError):
                    client.request({"op": "lease"})
            return True

        assert self._coordinator_probe(tmp_path, probe)

    def test_unknown_op_and_bad_json_keep_the_connection(self, tmp_path):
        def probe(bound):
            with WorkerClient(bound[0], bound[1]) as client:
                client.request({"op": "hello", "worker": "probe"})
                with pytest.raises(DistProtocolError):
                    client.request({"op": "launder"})
                client._file.write(b"not json\n")
                client._file.flush()
                reply = json.loads(client._file.readline())
                assert reply["ok"] is False
                assert reply["code"] == DistProtocolError.code
                # the connection survived both
                assert client.request({"op": "lease"})["ok"]
            return True

        assert self._coordinator_probe(tmp_path, probe)

    def test_result_for_unknown_cell_is_rejected(self, tmp_path):
        def probe(bound):
            with WorkerClient(bound[0], bound[1]) as client:
                client.request({"op": "hello", "worker": "probe"})
                with pytest.raises(DistProtocolError):
                    client.request({"op": "result", "cell": "bogus",
                                    "attempt": 0, "result": {}})
            return True

        assert self._coordinator_probe(tmp_path, probe)

    def test_cache_put_requires_a_payload_object(self, tmp_path):
        def probe(bound):
            with WorkerClient(bound[0], bound[1]) as client:
                client.request({"op": "hello", "worker": "probe"})
                with pytest.raises(DistProtocolError):
                    client.request({"op": "cache_put", "key": "k",
                                    "payload": {"no": "rendered"}})
            return True

        assert self._coordinator_probe(tmp_path, probe)


class TestOrchestratorIntegration:
    def _serial(self, tmp_path):
        return run_sweep(SweepConfig(
            frames=FRAMES, root=tmp_path / "serial", only=CELLS))

    def _distributed(self, tmp_path, **overrides):
        ready_holder = overrides.pop("ready_holder", None)
        config = SweepConfig(
            frames=FRAMES, root=tmp_path / "dist", only=CELLS,
            distributed="127.0.0.1:0", **overrides)
        if ready_holder is None:
            return run_sweep(config)
        return run_sweep(config)

    def test_watchdog_degrades_to_serial_and_stays_identical(
            self, tmp_path):
        serial = self._serial(tmp_path)
        # no workers ever join: the watchdog gives up fast and the
        # orchestrator finishes every cell serially in-process
        dist = self._distributed(tmp_path, worker_wait_s=0.3)
        assert dist.report == serial.report
        assert [e["event"] for e in read_events(dist.run_log)
                ].count("degraded_serial") == 1
        assert dist.report_path.read_bytes() \
            == serial.report_path.read_bytes()

    def test_spawned_fleet_is_byte_identical_to_serial(self, tmp_path):
        serial = self._serial(tmp_path)
        dist = self._distributed(tmp_path, spawn_workers=2,
                                 worker_wait_s=60.0)
        assert not dist.failures
        assert dist.report == serial.report
        assert dist.report_path.read_bytes() \
            == serial.report_path.read_bytes()
        events = [e["event"] for e in read_events(dist.run_log)]
        assert "worker_join" in events
        assert "degraded_serial" not in events
        timing = json.loads(dist.timing_path.read_text())
        assert timing["hosts"], "per-worker attribution missing"

    def test_hang_chaos_fleet_is_byte_identical_to_serial(self, tmp_path):
        serial = self._serial(tmp_path)
        dist = self._distributed(
            tmp_path, spawn_workers=2, worker_wait_s=60.0,
            heartbeat_s=0.1, lease_timeout_s=0.5,
            fault_spec=f"hang:{CELLS[0]}:times=1:delay=2")
        assert not dist.failures
        assert dist.report == serial.report
        assert dist.report_path.read_bytes() \
            == serial.report_path.read_bytes()
        events = [e["event"] for e in read_events(dist.run_log)]
        assert "lease_expired" in events

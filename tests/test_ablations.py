"""Ablation experiments (the beyond-the-paper sweeps)."""

from repro.experiments.ablations import (
    run_bus_ablation,
    run_lbb_capacity_ablation,
    run_reconfiguration_ablation,
    run_search_ablation,
)


class TestReconfigurationAblation:
    def test_zero_penalty_matches_table1(self, small_context):
        table = run_reconfiguration_ablation(small_context)
        zero_rows = [row for row in table.rows if row[0] == "0"]
        speedups = {float(row[3]) for row in zero_rows}
        assert len(speedups) == 1  # penalty 0: rotation irrelevant

    def test_thrashing_with_penalty_erases_the_gain(self, small_context):
        table = run_reconfiguration_ablation(small_context)
        worst = min(float(row[3]) for row in table.rows)
        best = max(float(row[3]) for row in table.rows)
        assert worst < 1.0 < best  # 512-cycle thrash turns A2 into a loss

    def test_fitting_rotation_keeps_full_speedup(self, small_context):
        table = run_reconfiguration_ablation(small_context)
        for row in table.rows:
            if row[2] == "no":
                assert float(row[3]) > 1.0


class TestLbbCapacityAblation:
    def test_reuse_grows_with_capacity(self, small_context):
        table = run_lbb_capacity_ablation(small_context)
        reuses = [int(row[4].replace(",", "")) for row in table.rows]
        assert reuses == sorted(reuses)

    def test_all_organisations_beat_one_line_buffer(self, small_context):
        from repro.core.scenarios import loop_scenario
        from repro.rfu.loop_model import Bandwidth
        one_lb = small_context.result(loop_scenario(Bandwidth.B1X32))
        baseline = small_context.baseline()
        one_lb_speedup = one_lb.speedup_over(baseline)
        table = run_lbb_capacity_ablation(small_context)
        for row in table.rows:
            assert float(row[2]) > one_lb_speedup


class TestBusAblation:
    def test_stall_share_grows_as_bus_slows(self, small_context):
        table = run_bus_ablation(small_context)
        shares = [float(row[3].strip("%")) for row in table.rows]
        assert shares[0] < shares[-1]

    def test_speedup_survives_every_bus(self, small_context):
        table = run_bus_ablation(small_context)
        for row in table.rows:
            assert float(row[2]) > 1.5


class TestSearchAblation:
    def test_diag_fraction_falls_with_wider_integer_search(self):
        table = run_search_ablation(frames=3)
        fractions = [float(row[2].strip("%")) for row in table.rows]
        assert fractions[0] > fractions[-1]  # 3step/2 > full search

    def test_loop_win_robust_to_strategy(self):
        table = run_search_ablation(frames=3)
        for row in table.rows:
            assert float(row[4]) > 2.0   # 1x32 loop kernel
            assert float(row[5]) > 5.0   # two line buffers

"""Differential testing: the whole compile-and-execute pipeline against a
trivial sequential interpreter.

For random dataflow programs (pure ops + loads/stores over a scratch
region), executing the operations one-by-one in program order must produce
exactly the same result register values and memory contents as scheduling
them into VLIW bundles, allocating registers and running the cycle-level
core.  This catches scheduler ordering bugs, register-allocator live-range
bugs and core write-back bugs in one property.
"""

from __future__ import annotations

from typing import Dict, List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.instruction import Operation
from repro.isa.registers import VirtualRegister
from repro.machine import Core, compile_kernel
from repro.machine.semantics import PURE_OPS
from repro.memory import MemorySystem
from repro.program.builder import KernelBuilder

SCRATCH_BASE = 0x8000
SCRATCH_WORDS = 16

_BINARY_OPS = ["add", "sub", "and", "or", "xor", "min", "max",
               "add4", "absd4", "avg4", "sad4", "add2", "mul"]
_IMM_OPS = ["addi", "shli", "shri", "andi"]
_UNARY_OPS = ["mov", "unpkl2", "unpkh2"]


@st.composite
def random_straightline(draw):
    """(op descriptors, initial memory words).

    Descriptors are symbolic: ("bin", op, a, b) etc. with integer value
    indices, materialised separately for the interpreter and the builder.
    """
    num_ops = draw(st.integers(3, 40))
    memory_words = draw(st.lists(st.integers(0, 0xFFFFFFFF),
                                 min_size=SCRATCH_WORDS,
                                 max_size=SCRATCH_WORDS))
    descriptors = []
    num_values = 2  # two seed constants
    seeds = [draw(st.integers(0, 0xFFFFFFFF)) for _ in range(2)]
    for _ in range(num_ops):
        kind = draw(st.sampled_from(["bin", "imm", "un", "load", "store"]))
        if kind == "bin":
            descriptors.append(("bin", draw(st.sampled_from(_BINARY_OPS)),
                                draw(st.integers(0, num_values - 1)),
                                draw(st.integers(0, num_values - 1))))
            num_values += 1
        elif kind == "imm":
            descriptors.append(("imm", draw(st.sampled_from(_IMM_OPS)),
                                draw(st.integers(0, num_values - 1)),
                                draw(st.integers(0, 31))))
            num_values += 1
        elif kind == "un":
            descriptors.append(("un", draw(st.sampled_from(_UNARY_OPS)),
                                draw(st.integers(0, num_values - 1))))
            num_values += 1
        elif kind == "load":
            descriptors.append(("load",
                                draw(st.integers(0, SCRATCH_WORDS - 1))))
            num_values += 1
        else:
            descriptors.append(("store",
                                draw(st.integers(0, SCRATCH_WORDS - 1)),
                                draw(st.integers(0, num_values - 1))))
    return descriptors, seeds, memory_words


def _interpret(descriptors, seeds, memory_words) -> tuple:
    values: List[int] = list(seeds)
    memory = list(memory_words)
    for descriptor in descriptors:
        kind = descriptor[0]
        if kind == "bin":
            _, op, a, b = descriptor
            values.append(PURE_OPS[op]([values[a], values[b]], None))
        elif kind == "imm":
            _, op, a, imm = descriptor
            values.append(PURE_OPS[op]([values[a]], imm))
        elif kind == "un":
            _, op, a = descriptor
            values.append(PURE_OPS[op]([values[a]], None))
        elif kind == "load":
            _, slot = descriptor
            values.append(memory[slot])
        else:
            _, slot, a = descriptor
            memory[slot] = values[a]
    return values[-1] if values else 0, memory


def _build(descriptors, seeds) -> "Program":
    kb = KernelBuilder("differential")
    values: List[VirtualRegister] = []
    with kb.block("body"):
        base = kb.const(SCRATCH_BASE)
        for seed in seeds:
            values.append(kb.emit("movi", imm=seed))
        for descriptor in descriptors:
            kind = descriptor[0]
            if kind == "bin":
                _, op, a, b = descriptor
                values.append(kb.emit(op, values[a], values[b]))
            elif kind == "imm":
                _, op, a, imm = descriptor
                values.append(kb.emit(op, values[a], imm=imm))
            elif kind == "un":
                _, op, a = descriptor
                values.append(kb.emit(op, values[a]))
            elif kind == "load":
                _, slot = descriptor
                values.append(kb.emit("ldw", base, imm=4 * slot,
                                      mem_tag="scratch"))
            else:
                _, slot, a = descriptor
                kb.emit("stw", values[a], base, imm=4 * slot,
                        mem_tag="scratch")
    kb.set_result(values[-1])
    return kb.finish()


class TestDifferential:
    @settings(max_examples=60, deadline=None)
    @given(random_straightline())
    def test_core_matches_sequential_interpreter(self, generated):
        descriptors, seeds, memory_words = generated
        expected_result, expected_memory = _interpret(
            descriptors, seeds, memory_words)

        program = _build(descriptors, seeds)
        loaded = compile_kernel(program)
        system = MemorySystem()
        for slot, word in enumerate(memory_words):
            system.main.store_word(SCRATCH_BASE + 4 * slot, word)
        run = Core(system).run(loaded, [])

        assert run.result == expected_result
        for slot, word in enumerate(expected_memory):
            assert system.main.load_word(SCRATCH_BASE + 4 * slot) == word, \
                f"memory slot {slot} diverged"

    @settings(max_examples=20, deadline=None)
    @given(random_straightline())
    def test_rerun_is_deterministic(self, generated):
        descriptors, seeds, memory_words = generated
        program = _build(descriptors, seeds)
        loaded = compile_kernel(program)

        def run_once():
            system = MemorySystem()
            for slot, word in enumerate(memory_words):
                system.main.store_word(SCRATCH_BASE + 4 * slot, word)
            return Core(system).run(loaded, []).result

        assert run_once() == run_once()

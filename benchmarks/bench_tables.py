"""Regenerate every table of the paper's evaluation (Tables 1-7 + the
initial profile) and benchmark the regeneration.

Run with::

    pytest benchmarks/ --benchmark-only

Each benchmark writes the rendered table (our measured rows next to the
paper's reference values) to ``benchmarks/results/<table>.txt``.
"""

import pytest

from repro.experiments import (
    run_profile,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    run_table7,
)

RUNNERS = {
    "profile": run_profile,
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "table6": run_table6,
    "table7": run_table7,
}


@pytest.mark.parametrize("name", list(RUNNERS))
def bench_table(benchmark, context, save_artifact, name):
    runner = RUNNERS[name]
    table = benchmark(runner, context)
    rendered = table.render()
    save_artifact(name, rendered)
    assert table.rows, f"{name} produced no rows"


def bench_full_report_table2_shape(context, save_artifact):
    """Not a timing benchmark: asserts the headline shapes on the bench
    workload and records them (who wins, by roughly what factor)."""
    table2 = run_table2(context)
    speedups = [float(row[table2.columns.index("S.Up")])
                for row in table2.rows[1:]]
    beta1 = speedups[:3]
    assert beta1[0] < beta1[1] < beta1[2], "bandwidth must scale speedup"
    assert 2.0 < beta1[0] < 5.5, "1x32 speedup out of the paper's band"
    table7 = run_table7(context)
    headline = float(table7.rows[1][table7.columns.index("S.Up")])
    assert 6.0 < headline < 12.0, "two-line-buffer headline (paper: 8x)"
    save_artifact("headline_shapes",
                  f"1x32/1x64/2x64 (b=1): {beta1}\n2LB headline: {headline}")

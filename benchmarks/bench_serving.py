"""Serving-layer benchmark: multi-stream throughput, latency, and gates.

Standalone usage (CI runs the small form and uploads the JSON artifact)::

    PYTHONPATH=src python benchmarks/bench_serving.py [--streams 4]
        [--frames 8] [--workers 2] [--json artifact.json]

Correctness comes before any timing, as in every benchmark here:

* one stream fed through the service in segments must produce a
  bitstream **byte-identical** to a one-shot encode (the differential
  guarantee the serving tests pin);
* every segment result of the timed run must be ``ok``.

Then two timed phases over the same ``--streams`` synthetic sequences:

* **baseline** — sequential one-shot encodes, one stream after another,
  in this process (what the repo offered before the service existed);
* **service** — the same frames through :class:`repro.serve.CodecService`
  on a ``--workers`` pool, segments interleaved round-robin across
  streams, collecting as results arrive.

Gates (exit non-zero on violation, so the script doubles as CI's
``serving-gate``):

* **scaling** — aggregate service throughput (stream-frames/s) must reach
  ``--min-scaling`` x the sequential baseline.  This gate is CPU-aware:
  real scaling needs >= 2 cores and >= 2 workers (CI runners have 2
  vCPUs); on a single-core host — where a process pool cannot beat a
  sequential loop — the gate degrades to an overhead bound
  (``--min-1core-efficiency`` of baseline) and says so loudly;
* **p99 latency** — the 99th-percentile submit-to-collect segment
  latency must stay under ``--p99-budget``;
* **cache** — the workers' shared plane cache must report a positive
  hit rate (the segmented encoder re-derives planes otherwise).

``--json`` writes every measured number for trending.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.codec import EncoderConfig, Mpeg4Encoder
from repro.codec.sequence import SyntheticSequenceConfig, synthetic_sequence
from repro.serve import CodecService, StreamConfig

from _trajectory import record_trajectory

DEFAULT_STREAMS = 4
DEFAULT_FRAMES = 8
DEFAULT_SEGMENT_FRAMES = 2
DEFAULT_WORKERS = 2
DEFAULT_WIDTH = 64
DEFAULT_HEIGHT = 48
DEFAULT_QP = 10
DEFAULT_RESYNC_EVERY = 1
DEFAULT_MIN_SCALING = 1.05
DEFAULT_MIN_1CORE_EFFICIENCY = 0.55
DEFAULT_P99_BUDGET_S = 10.0


def _percentile(values, pct):
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(pct / 100 * (len(ordered) - 1))))
    return ordered[index]


def _make_streams(args):
    return [synthetic_sequence(SyntheticSequenceConfig(
        width=args.width, height=args.height, frames=args.frames,
        seed=1000 + index)) for index in range(args.streams)]


def _knobs(args):
    return dict(qp=args.qp, resync_every=args.resync_every)


def _run_service(args, streams, collect_latencies=True):
    """All streams through the pool, interleaved; returns measurements."""
    latencies = []
    payloads = {}
    bad = 0
    with CodecService(workers=args.workers,
                      max_pending=args.max_pending) as service:
        # the pool is long-lived in real operation; its spawn cost is not
        # part of steady-state throughput, so the clock starts here
        started = time.perf_counter()
        ids = [service.open_stream(StreamConfig(kind="encode",
                                                **_knobs(args)))
               for _ in streams]
        segment = args.segment_frames
        for start in range(0, args.frames, segment):
            for stream_id, frames in zip(ids, streams):
                service.submit_segment(stream_id,
                                       frames[start:start + segment])
            for stream_id in ids:     # drain opportunistically
                for result in service.collect(stream_id):
                    latencies.append(result.latency_s)
                    bad += 0 if result.ok else 1
        cache = {}
        for stream_id in ids:
            summary = service.close_stream(stream_id)
            for result in summary.uncollected:
                latencies.append(result.latency_s)
                bad += 0 if result.ok else 1
            payloads[stream_id] = summary.payload
            cache = summary.cache or cache
        wall = time.perf_counter() - started
    return {
        "wall_s": wall,
        "latencies": latencies if collect_latencies else [],
        "payloads": [payloads[stream_id] for stream_id in ids],
        "bad_segments": bad,
        "cache": cache,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--streams", type=int, default=DEFAULT_STREAMS)
    parser.add_argument("--frames", type=int, default=DEFAULT_FRAMES,
                        help="frames per stream")
    parser.add_argument("--segment-frames", type=int,
                        default=DEFAULT_SEGMENT_FRAMES)
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS)
    parser.add_argument("--max-pending", type=int, default=8)
    parser.add_argument("--width", type=int, default=DEFAULT_WIDTH)
    parser.add_argument("--height", type=int, default=DEFAULT_HEIGHT)
    parser.add_argument("--qp", type=int, default=DEFAULT_QP)
    parser.add_argument("--resync-every", type=int,
                        default=DEFAULT_RESYNC_EVERY)
    parser.add_argument("--min-scaling", type=float,
                        default=DEFAULT_MIN_SCALING,
                        help="service/baseline throughput floor when the "
                             "host can actually scale (>=2 cores and "
                             ">=2 workers)")
    parser.add_argument("--min-1core-efficiency", type=float,
                        default=DEFAULT_MIN_1CORE_EFFICIENCY,
                        help="throughput floor relative to baseline on "
                             "hosts where scaling is impossible "
                             "(single core, or workers < 2)")
    parser.add_argument("--p99-budget", type=float,
                        default=DEFAULT_P99_BUDGET_S,
                        help="p99 submit-to-collect segment latency "
                             "ceiling, seconds")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the measurement artifact here")
    args = parser.parse_args()

    failures = []
    streams = _make_streams(args)
    total_frames = args.streams * args.frames

    # correctness first: the differential guarantee, per stream
    references = [
        Mpeg4Encoder(EncoderConfig(**_knobs(args))).encode(frames)
        .serialize() for frames in streams]
    warmup = _run_service(args, streams, collect_latencies=False)
    for index, (payload, reference) in enumerate(
            zip(warmup["payloads"], references)):
        if payload != reference:
            failures.append(f"stream {index}: service bitstream is not "
                            f"byte-identical to the one-shot encode")
    if warmup["bad_segments"]:
        failures.append(f"{warmup['bad_segments']} segment(s) failed in "
                        f"the warmup run")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1

    # baseline: sequential one-shot encodes
    started = time.perf_counter()
    for frames in streams:
        Mpeg4Encoder(EncoderConfig(**_knobs(args))).encode(frames)
    baseline_wall = time.perf_counter() - started
    baseline_fps = total_frames / baseline_wall

    # timed service run
    run = _run_service(args, streams)
    service_fps = total_frames / run["wall_s"]
    scaling = service_fps / baseline_fps
    p50 = _percentile(run["latencies"], 50)
    p99 = _percentile(run["latencies"], 99)
    plane_stats = (run["cache"] or {}).get("shared_planes", {})
    hit_rate = plane_stats.get("hit_rate", 0.0)

    cores = os.cpu_count() or 1
    can_scale = cores >= 2 and args.workers >= 2
    if run["bad_segments"]:
        failures.append(f"{run['bad_segments']} segment(s) failed in the "
                        f"timed run")
    if can_scale:
        if scaling < args.min_scaling:
            failures.append(
                f"service throughput is {scaling:.2f}x baseline, under "
                f"the {args.min_scaling:.2f}x scaling gate "
                f"({cores} cores, {args.workers} workers)")
    else:
        print(f"WARNING: host cannot scale ({cores} core(s), "
              f"{args.workers} worker(s)) — degrading the scaling gate "
              f"to a {args.min_1core_efficiency:.0%}-of-baseline "
              f"overhead bound", file=sys.stderr)
        if scaling < args.min_1core_efficiency:
            failures.append(
                f"service throughput is {scaling:.2f}x baseline, under "
                f"the degraded {args.min_1core_efficiency:.2f}x "
                f"single-core efficiency gate")
    if p99 > args.p99_budget:
        failures.append(f"p99 segment latency {p99:.3f}s exceeds the "
                        f"{args.p99_budget:.3f}s budget")
    if hit_rate <= 0.0:
        failures.append("the shared plane cache never hit — segmented "
                        "encoding is re-deriving half-sample planes")

    print(f"serving x{args.streams} streams x{args.frames} frames "
          f"({args.width}x{args.height}), segments of "
          f"{args.segment_frames}, {args.workers} worker(s), "
          f"{cores} core(s)")
    print(f"  baseline: {baseline_wall:6.3f}s sequential "
          f"({baseline_fps:6.1f} stream-frames/s)")
    print(f"  service:  {run['wall_s']:6.3f}s interleaved "
          f"({service_fps:6.1f} stream-frames/s, {scaling:.2f}x)")
    print(f"  latency:  p50 {p50 * 1000:7.1f} ms, p99 {p99 * 1000:7.1f} ms "
          f"over {len(run['latencies'])} segments")
    print(f"  cache:    shared-plane hit rate {hit_rate:.1%}")

    if args.json:
        artifact = {
            "streams": args.streams,
            "frames_per_stream": args.frames,
            "segment_frames": args.segment_frames,
            "workers": args.workers,
            "width": args.width,
            "height": args.height,
            "cores": cores,
            "scaling_gate_active": can_scale,
            "baseline_wall_s": baseline_wall,
            "baseline_fps": baseline_fps,
            "service_wall_s": run["wall_s"],
            "service_fps": service_fps,
            "scaling": scaling,
            "latency_p50_s": p50,
            "latency_p99_s": p99,
            "p99_budget_s": args.p99_budget,
            "shared_plane_hit_rate": hit_rate,
            "failures": failures,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2)
        print(f"  artifact: {args.json}")

    trajectory = record_trajectory(
        "bench_serving",
        wall_s={"baseline": baseline_wall, "service": run["wall_s"]},
        gates={
            "min_scaling": args.min_scaling,
            "min_1core_efficiency": args.min_1core_efficiency,
            "scaling_gate_active": can_scale,
            "scaling": scaling,
            "p99_budget_s": args.p99_budget,
            "latency_p99_s": p99,
            "shared_plane_hit_rate": hit_rate,
            "passed": not failures,
        },
        extra={"streams": args.streams, "frames": args.frames,
               "workers": args.workers, "cores": cores})
    print(f"  trajectory: {trajectory}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    gate = "scaling" if can_scale else "single-core efficiency"
    print(f"OK: byte-identical bitstreams, every segment ok, {gate} and "
          f"p99 gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

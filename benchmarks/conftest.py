"""Benchmark fixtures.

The benchmark workload defaults to 10 synthetic frames so the full harness
runs in a couple of minutes; set ``REPRO_BENCH_FRAMES=25`` for the paper's
full 25-frame configuration.  Every table/figure benchmark also writes its
rendered artefact to ``benchmarks/results/`` so the regenerated rows are
inspectable after the run.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.core.exploration import ExplorationConfig
from repro.core.scenarios import all_scenarios
from repro.experiments.workload import ExperimentContext

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_frames() -> int:
    return int(os.environ.get("REPRO_BENCH_FRAMES", "10"))


@pytest.fixture(scope="session")
def context():
    """Shared encode + replay cache for every table benchmark."""
    ctx = ExperimentContext(ExplorationConfig(frames=bench_frames()))
    # replay every scenario once up front: each table benchmark then
    # measures table regeneration over a warm exploration, and the printed
    # artefacts all describe the same run
    for scenario in all_scenarios():
        ctx.result(scenario)
    return ctx


@pytest.fixture(scope="session")
def save_artifact():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, rendered: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(rendered + "\n")

    return _save

"""Motion-estimation throughput benchmark: scalar GetSad vs the SAD engine.

Standalone usage (the acceptance gate of the fast-ME work)::

    PYTHONPATH=src python benchmarks/bench_motion.py [--frames 25]
                                                     [--min-speedup 5.0]

The script runs the default synthetic QCIF workload, extracts the exact
GetSad candidate stream the three-step search evaluates, and times three
replay tiers over identical candidates:

1. ``scalar``   — per-call :func:`repro.codec.sad.getsad`, the pre-change
   evaluation path (re-slices and re-interpolates on every call);
2. ``batched``  — per-macroblock :meth:`ReferencePlanes.sad_many` batches,
   the shape the motion-search driver uses;
3. ``stream``   — the columnar :meth:`ReferencePlanes.sad_stream` form, the
   engine's full candidate-evaluation throughput (the headline number the
   ``--min-speedup`` gate applies to).

Every tier's SAD values are verified against the golden trace, and a
fast-vs-scalar driver pass asserts byte-identical ``MeTrace`` output
(signature, call count, diagonal fraction, chosen vectors) before any
timing is reported.

The ``bench_*`` functions at the bottom expose tiers 1-3 to
pytest-benchmark (``python -m pytest benchmarks/bench_motion.py``).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Tuple

import numpy as np

from repro.codec.fastme import FastSadEngine
from repro.codec.motion import MotionEstimator, ThreeStepSearch
from repro.codec.sad import getsad
from repro.codec.sequence import SyntheticSequenceConfig, synthetic_sequence
from repro.codec.tracer import MeTrace

DEFAULT_FRAMES = 25
DEFAULT_MIN_SPEEDUP = 5.0


def workload_frames(frames: int, seed: int = 2002) -> List[np.ndarray]:
    sequence = synthetic_sequence(SyntheticSequenceConfig(frames=frames,
                                                          seed=seed))
    return [frame.y for frame in sequence]


def me_pass(frames: List[np.ndarray], *, use_fast_engine: bool,
            initial_step: int = 2) -> Tuple[MeTrace, float]:
    """One full motion-estimation pass; returns (trace, wall seconds)."""
    estimator = MotionEstimator(strategy=ThreeStepSearch(initial_step),
                                use_fast_engine=use_fast_engine)
    trace = MeTrace()
    start = time.perf_counter()
    for index in range(1, len(frames)):
        current, reference = frames[index], frames[index - 1]
        height, width = current.shape
        for mb_y in range(0, height, 16):
            for mb_x in range(0, width, 16):
                estimator.estimate(current, reference, mb_x, mb_y,
                                   frame_index=index, trace=trace)
    return trace, time.perf_counter() - start


def candidate_stream(trace: MeTrace) -> Dict[int, List[Tuple[int, ...]]]:
    """Per-frame (mb_x, mb_y, pred_x, pred_y, half_x, half_y) rows."""
    stream: Dict[int, List[Tuple[int, ...]]] = {}
    for inv in trace:
        stream.setdefault(inv.frame, []).append(
            (inv.mb_x, inv.mb_y, inv.pred_x, inv.pred_y,
             inv.mode.value & 1, inv.mode.value >> 1))
    return stream


def replay_scalar(frames, stream) -> List[int]:
    """Tier 1: the pre-change per-call GetSad path."""
    out: List[int] = []
    for index, rows in stream.items():
        current, reference = frames[index], frames[index - 1]
        for mb_x, mb_y, px, py, half_x, half_y in rows:
            out.append(getsad(current, reference, mb_x, mb_y, px, py,
                              half_x, half_y))
    return out


def replay_batched(frames, batches, engine: FastSadEngine) -> List[int]:
    """Tier 2: per-macroblock sad_many batches (driver-shaped)."""
    out: List[int] = []
    for (index, mb_x, mb_y), candidates in batches:
        planes = engine.planes(frames[index - 1])
        block = engine.block(frames[index], mb_x, mb_y)
        out.extend(planes.sad_many(block, candidates))
    return out


def replay_stream(frames, columns, engine: FastSadEngine) -> np.ndarray:
    """Tier 3: columnar sad_stream evaluation (the engine's headline)."""
    out = []
    for index, arrays in columns.items():
        out.append(engine.sad_stream(frames[index], frames[index - 1],
                                     *arrays))
    return np.concatenate(out)


def _mb_batches(stream):
    batches: Dict[Tuple[int, int, int], List[Tuple[int, ...]]] = {}
    for index, rows in stream.items():
        for mb_x, mb_y, px, py, half_x, half_y in rows:
            batches.setdefault((index, mb_x, mb_y), []).append(
                (px, py, half_x, half_y))
    return list(batches.items())


def _columns(stream):
    return {index: [np.array(column) for column in zip(*rows)]
            for index, rows in stream.items()}


def _best_of(callable_, reps: int) -> float:
    best = None
    for _ in range(reps):
        start = time.perf_counter()
        callable_()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def run(frames_count: int = DEFAULT_FRAMES,
        min_speedup: float = DEFAULT_MIN_SPEEDUP, reps: int = 3,
        verbose: bool = True) -> float:
    frames = workload_frames(frames_count)

    # -- correctness gate: the engine-backed driver must emit a trace
    # byte-identical to the scalar path's, with identical statistics
    slow_trace, slow_seconds = me_pass(frames, use_fast_engine=False)
    fast_trace, fast_seconds = me_pass(frames, use_fast_engine=True)
    if slow_trace.signature() != fast_trace.signature():
        raise AssertionError("fast-ME trace diverges from the scalar path")
    assert len(slow_trace) == len(fast_trace)
    assert slow_trace.diagonal_fraction() == fast_trace.diagonal_fraction()

    stream = candidate_stream(fast_trace)
    golden = [inv.sad for inv in fast_trace]
    batches = _mb_batches(stream)
    columns = _columns(stream)
    engine = FastSadEngine()

    assert replay_scalar(frames, stream) == golden
    assert replay_batched(frames, batches, engine) == golden
    assert replay_stream(frames, columns, engine).tolist() == golden

    calls = len(golden)
    scalar_s = _best_of(lambda: replay_scalar(frames, stream), reps)
    batched_s = _best_of(lambda: replay_batched(frames, batches, engine),
                         reps)
    stream_s = _best_of(lambda: replay_stream(frames, columns, engine), reps)
    speedup = scalar_s / stream_s

    if verbose:
        print(f"workload: {frames_count} QCIF frames, three-step search, "
              f"{calls:,} GetSad candidates "
              f"({100 * fast_trace.diagonal_fraction():.1f}% diagonal)")
        print(f"driver pass: scalar {calls / slow_seconds:,.0f} calls/s, "
              f"engine {calls / fast_seconds:,.0f} calls/s "
              f"({slow_seconds / fast_seconds:.2f}x), traces byte-identical")
        print("candidate-evaluation throughput (identical candidates, "
              "SADs verified):")
        print(f"  scalar getsad : {calls / scalar_s:>10,.0f} candidates/s")
        print(f"  sad_many      : {calls / batched_s:>10,.0f} candidates/s "
              f"({scalar_s / batched_s:.2f}x)")
        print(f"  sad_stream    : {calls / stream_s:>10,.0f} candidates/s "
              f"({speedup:.2f}x)  <- headline")
    return speedup


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--frames", type=int, default=DEFAULT_FRAMES)
    parser.add_argument("--min-speedup", type=float,
                        default=DEFAULT_MIN_SPEEDUP,
                        help="fail unless sad_stream beats scalar getsad by "
                             "this factor (0 disables the gate)")
    parser.add_argument("--reps", type=int, default=3,
                        help="timing repetitions (best-of)")
    args = parser.parse_args(argv)
    if args.frames < 2:
        parser.error("--frames must be >= 2 (frame 0 is the I-frame "
                     "reference; motion estimation starts at frame 1)")
    speedup = run(args.frames, args.min_speedup, args.reps)
    if args.min_speedup and speedup < args.min_speedup:
        print(f"FAIL: {speedup:.2f}x < required {args.min_speedup:.2f}x",
              file=sys.stderr)
        return 1
    print(f"OK: {speedup:.2f}x")
    return 0


# -- pytest-benchmark entry points (small workload) --------------------------

def _fixture_state():
    frames = workload_frames(4)
    trace, _ = me_pass(frames, use_fast_engine=True)
    stream = candidate_stream(trace)
    return frames, stream


def bench_scalar_getsad_replay(benchmark):
    frames, stream = _fixture_state()
    benchmark(replay_scalar, frames, stream)


def bench_engine_sad_many_replay(benchmark):
    frames, stream = _fixture_state()
    batches = _mb_batches(stream)
    engine = FastSadEngine()
    benchmark(replay_batched, frames, batches, engine)


def bench_engine_sad_stream_replay(benchmark):
    frames, stream = _fixture_state()
    columns = _columns(stream)
    engine = FastSadEngine()
    benchmark(replay_stream, frames, columns, engine)


if __name__ == "__main__":
    sys.exit(main())

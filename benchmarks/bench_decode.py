"""Decode-path benchmark: strict vs robust on clean streams, with gates.

Standalone usage (CI runs the 3-frame form)::

    PYTHONPATH=src python benchmarks/bench_decode.py [--frames 5]
                                                     [--resync-every 2]
                                                     [--max-overhead 0.05]

The script encodes a synthetic QCIF sequence once, serializes it in both
wire layouts, and asserts correctness before reporting any timing:

* the strict decode of the **legacy** payload equals the encoder's
  reconstruction bit for bit;
* the strict decode of the **resilient** payload equals it too (the two
  layouts carry identical macroblock syntax);
* the robust decode of either clean payload is bit-identical to the
  strict decode with a clean :class:`~repro.codec.decoder.DecodeHealth`
  (zero events, zero concealment) — the differential guarantee;
* the resilient layout's size overhead stays under ``--max-size-overhead``
  (default 15%).

It then times strict vs robust decodes of the same clean resilient
payload (best of ``--repeats``) and fails if the robust path costs more
than ``--max-overhead`` (default 5%) over strict, plus an absolute
``--overhead-slack`` for timer noise.  Exit status is non-zero on any
violation, so the script doubles as a CI gate.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.codec import (
    EncoderConfig,
    Mpeg4Encoder,
    decode_sequence,
    deserialize,
    robust_decode,
    serialize,
)
from repro.codec.sequence import SyntheticSequenceConfig, synthetic_sequence

DEFAULT_FRAMES = 5
DEFAULT_RESYNC_EVERY = 2
DEFAULT_REPEATS = 3
DEFAULT_MAX_OVERHEAD = 0.05
DEFAULT_MAX_SIZE_OVERHEAD = 0.15
DEFAULT_OVERHEAD_SLACK_S = 0.25


def _frames_equal(decoded, reference) -> bool:
    return len(decoded) == len(reference) and all(
        np.array_equal(a.y, b.y) and np.array_equal(a.u, b.u)
        and np.array_equal(a.v, b.v)
        for a, b in zip(decoded, reference))


def _best_of(repeats, thunk):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        thunk()
        best = min(best, time.perf_counter() - started)
    return best


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=DEFAULT_FRAMES)
    parser.add_argument("--resync-every", type=int,
                        default=DEFAULT_RESYNC_EVERY)
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--max-overhead", type=float,
                        default=DEFAULT_MAX_OVERHEAD,
                        help="relative robust-decode cost ceiling on a "
                             "clean stream (0.05 = 5%%)")
    parser.add_argument("--max-size-overhead", type=float,
                        default=DEFAULT_MAX_SIZE_OVERHEAD,
                        help="relative resilient-layout size ceiling "
                             "(0.15 = 15%%)")
    parser.add_argument("--overhead-slack", type=float,
                        default=DEFAULT_OVERHEAD_SLACK_S,
                        help="absolute seconds of timer noise tolerated "
                             "on top of --max-overhead")
    args = parser.parse_args()

    frames = synthetic_sequence(SyntheticSequenceConfig(frames=args.frames))
    report = Mpeg4Encoder(EncoderConfig(
        resync_every=args.resync_every)).encode(frames)
    legacy = serialize(report.coded, resync_every=0)
    resilient = report.serialize()

    failures = []
    strict_legacy = decode_sequence(deserialize(legacy))
    if not _frames_equal(strict_legacy, report.reconstructed):
        failures.append("strict legacy decode != encoder reconstruction")
    strict_resilient = decode_sequence(deserialize(resilient))
    if not _frames_equal(strict_resilient, report.reconstructed):
        failures.append("strict resilient decode != encoder reconstruction")
    for name, payload in (("legacy", legacy), ("resilient", resilient)):
        robust_frames, health = robust_decode(payload)
        if not _frames_equal(robust_frames, report.reconstructed):
            failures.append(f"robust {name} decode of a clean stream is "
                            f"not bit-identical to strict")
        if not health.ok:
            failures.append(f"robust {name} decode of a clean stream "
                            f"reports corruption: {health.summary()}")
    size_overhead = len(resilient) / len(legacy) - 1.0
    if size_overhead > args.max_size_overhead:
        failures.append(
            f"resilient layout is {size_overhead:.1%} larger than legacy, "
            f"over the {args.max_size_overhead:.0%} gate")

    strict_s = _best_of(
        args.repeats, lambda: decode_sequence(deserialize(resilient)))
    robust_s = _best_of(args.repeats, lambda: robust_decode(resilient))
    budget_s = strict_s * (1.0 + args.max_overhead) + args.overhead_slack
    if robust_s > budget_s:
        failures.append(
            f"robust decode took {robust_s:.3f}s on a clean stream, over "
            f"the {budget_s:.3f}s budget (strict {strict_s:.3f}s x "
            f"{1 + args.max_overhead:.2f} + {args.overhead_slack}s slack)")

    print(f"decode x{args.frames} frames, resync_every="
          f"{args.resync_every}")
    print(f"  payload: legacy {len(legacy):,} B, resilient "
          f"{len(resilient):,} B ({size_overhead:+.1%})")
    print(f"  strict:  {strict_s:6.3f}s  (best of {args.repeats})")
    print(f"  robust:  {robust_s:6.3f}s  "
          f"({100 * (robust_s / max(strict_s, 1e-9) - 1):+.1f}% vs strict)")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: bit-identical decodes on both layouts, clean health, "
          "size and overhead gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Sweep-orchestration benchmark: cold vs warm cache, with assertions.

Standalone usage (the acceptance smoke of the sweep work; CI runs the
3-frame form)::

    PYTHONPATH=src python benchmarks/bench_sweep.py [--frames 3]
                                                    [--jobs 2]
                                                    [--min-hit-rate 0.8]

The script runs the full experiment sweep twice against a fresh temporary
sweep directory:

1. **cold** — empty cache: every cell executes (``--jobs`` of them
   concurrently);
2. **warm** — identical configuration: cells must restore from the
   on-disk cache.

It then asserts, before reporting any timing:

* the two reports are **byte-identical**;
* the warm run's cache-hit rate is at least ``--min-hit-rate`` (default
  0.8, i.e. a warm rerun skips >= 80% of the runner work), verified from
  the ``cache_hit`` events in the JSONL run log, not just the summary;
* no cell failed in either run.

Exit status is non-zero on any violation, so the script doubles as a CI
gate.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

from repro.sweep import SweepConfig, read_events, run_sweep

DEFAULT_FRAMES = 3
DEFAULT_JOBS = 2
DEFAULT_MIN_HIT_RATE = 0.8


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=DEFAULT_FRAMES)
    parser.add_argument("--jobs", type=int, default=DEFAULT_JOBS)
    parser.add_argument("--min-hit-rate", type=float,
                        default=DEFAULT_MIN_HIT_RATE)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="repro-sweep-bench-") as tmp:
        config = SweepConfig(frames=args.frames, jobs=args.jobs,
                             root=Path(tmp))
        started = time.perf_counter()
        cold = run_sweep(config)
        cold_s = time.perf_counter() - started
        started = time.perf_counter()
        warm = run_sweep(config)
        warm_s = time.perf_counter() - started

        failures = []
        if cold.failures or warm.failures:
            failures.append(
                f"failed cells: cold={[c.name for c in cold.failures]} "
                f"warm={[c.name for c in warm.failures]}")
        if cold.report != warm.report:
            failures.append("cold and warm reports are not byte-identical")
        if cold.cache_hits != 0:
            failures.append(f"cold run hit the cache {cold.cache_hits}x "
                            f"(expected a cold start)")
        hits = read_events(warm.run_log, "cache_hit")
        hit_rate = len(hits) / len(warm.cells)
        if hit_rate < args.min_hit_rate:
            failures.append(f"warm hit rate {hit_rate:.0%} below the "
                            f"{args.min_hit_rate:.0%} gate "
                            f"(hits: {sorted(e['cell'] for e in hits)})")

        print(f"sweep x{len(cold.cells)} cells, {args.frames} frames, "
              f"jobs={args.jobs}")
        print(f"  cold: {cold_s:6.2f}s  "
              f"({cold.sweep_report['totals']['executed']} executed)")
        print(f"  warm: {warm_s:6.2f}s  ({len(hits)} cache hits, "
              f"hit rate {hit_rate:.0%}, {cold_s / max(warm_s, 1e-9):.0f}x "
              f"faster)")
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print("OK: byte-identical reports, cache gate passed")
        return 0


if __name__ == "__main__":
    sys.exit(main())

"""Sweep-orchestration benchmark: cold vs warm cache, with assertions.

Standalone usage (the acceptance smoke of the sweep work; CI runs the
3-frame form)::

    PYTHONPATH=src python benchmarks/bench_sweep.py [--frames 3]
                                                    [--jobs 2]
                                                    [--min-hit-rate 0.8]
                                                    [--max-overhead 0.05]

The script runs the full experiment sweep eight times against fresh
temporary sweep directories:

1. **cold** — empty cache: every cell executes (``--jobs`` of them
   concurrently);
2. **warm** — identical configuration: cells must restore from the
   on-disk cache;
3. **plain** / **armed** — the resilience-overhead pair: two more
   empty-cache runs off the now-warm in-process context (neither pays
   the encode), one with the defaults and one with the resilience layer
   armed (a generous ``--cell-timeout`` plus the retry budget),
   measuring what the fault-tolerance machinery costs when nothing
   fails;
4. **warm-incremental** — a decoder-only touch in a copied tree, then
   ``--incremental`` against the warm root: the import-graph keys must
   invalidate **zero** cells and the re-sweep must finish within
   ``--max-incremental-fraction`` of the cold wall;
5. **dist-clean / dist-hang** — the supervision pair: two spawned
   two-worker distributed sweeps with a tight heartbeat budget, one
   clean and one with an injected ``hang`` freezing a worker mid-lease.
   The hung lease must be detected within ``--detection-factor`` times
   the lease budget (measured from the ``lease_expired`` event's
   ``since_beat_s``), the faulted wall must stay within
   ``--max-dist-overhead`` of the clean distributed wall, and both
   reports must stay byte-identical to cold;
6. **dist-journal** — the durability-overhead run: the same clean
   distributed sweep with ``--journal`` armed, so every lease grant and
   result commit pays a write-ahead fsync barrier.  The journaled wall
   must stay within ``--max-journal-overhead`` (default 5%) of the
   unjournaled clean distributed wall, and the report byte-identical to
   cold — durability must not tax the happy path.

It then asserts, before reporting any timing:

* all eight reports are **byte-identical**;
* the warm run's cache-hit rate is at least ``--min-hit-rate`` (default
  0.8, i.e. a warm rerun skips >= 80% of the runner work), verified from
  the ``cache_hit`` events in the JSONL run log, not just the summary;
* the armed run costs at most ``--max-overhead`` (default 5%) over the
  plain cold run, plus an absolute ``--overhead-slack`` for timer noise;
* no cell failed in any run.

Exit status is non-zero on any violation, so the script doubles as a CI
gate.  Every run appends its walls and gate values to the repo-root
``BENCH_sweep.json`` trajectory (see :mod:`_trajectory`), which CI
uploads so perf history is comparable across PRs.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import time
from pathlib import Path

import repro
from repro import faults
from repro.sweep import SweepConfig, read_events, run_sweep
from repro.sweep.deps import reset_scan_cache

from _trajectory import record_trajectory

DEFAULT_FRAMES = 3
DEFAULT_JOBS = 2
DEFAULT_MIN_HIT_RATE = 0.8
DEFAULT_MAX_OVERHEAD = 0.05
DEFAULT_OVERHEAD_SLACK_S = 0.75
DEFAULT_MAX_INCREMENTAL_FRACTION = 0.25
DEFAULT_INCREMENTAL_SLACK_S = 0.25
DEFAULT_MAX_DIST_OVERHEAD = 0.25
DEFAULT_DIST_SLACK_S = 1.0
DEFAULT_DETECTION_FACTOR = 2.0
DEFAULT_MAX_JOURNAL_OVERHEAD = 0.05
#: supervision knobs of the distributed pair: tight enough that the
#: injected hang is caught in ~a second, loose enough not to flake
DIST_HEARTBEAT_S = 0.2
DIST_LEASE_TIMEOUT_S = 1.0
#: the cell the dist-hang run freezes (first lease attempt only)
DIST_HANG_SPEC = "hang:figure1:times=1:delay=3"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=DEFAULT_FRAMES)
    parser.add_argument("--jobs", type=int, default=DEFAULT_JOBS)
    parser.add_argument("--min-hit-rate", type=float,
                        default=DEFAULT_MIN_HIT_RATE)
    parser.add_argument("--max-overhead", type=float,
                        default=DEFAULT_MAX_OVERHEAD,
                        help="relative warm-path cost ceiling of the "
                             "armed resilience layer (0.05 = 5%%)")
    parser.add_argument("--overhead-slack", type=float,
                        default=DEFAULT_OVERHEAD_SLACK_S,
                        help="absolute seconds of timer noise tolerated "
                             "on top of --max-overhead")
    parser.add_argument("--max-incremental-fraction", type=float,
                        default=DEFAULT_MAX_INCREMENTAL_FRACTION,
                        help="warm-incremental wall-time ceiling as a "
                             "fraction of the cold wall (0.25 = 25%%)")
    parser.add_argument("--incremental-slack", type=float,
                        default=DEFAULT_INCREMENTAL_SLACK_S,
                        help="absolute seconds of timer noise tolerated "
                             "on top of --max-incremental-fraction")
    parser.add_argument("--max-dist-overhead", type=float,
                        default=DEFAULT_MAX_DIST_OVERHEAD,
                        help="faulted distributed wall ceiling relative "
                             "to the clean distributed wall (0.25 = 25%%)")
    parser.add_argument("--dist-slack", type=float,
                        default=DEFAULT_DIST_SLACK_S,
                        help="absolute seconds of noise tolerated on top "
                             "of --max-dist-overhead")
    parser.add_argument("--detection-factor", type=float,
                        default=DEFAULT_DETECTION_FACTOR,
                        help="hung-lease detection ceiling as a multiple "
                             "of the lease budget")
    parser.add_argument("--max-journal-overhead", type=float,
                        default=DEFAULT_MAX_JOURNAL_OVERHEAD,
                        help="journaled clean distributed wall ceiling "
                             "relative to the unjournaled clean wall "
                             "(0.05 = 5%%)")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="repro-sweep-bench-") as tmp:
        config = SweepConfig(frames=args.frames, jobs=args.jobs,
                             root=Path(tmp))
        started = time.perf_counter()
        cold = run_sweep(config)
        cold_s = time.perf_counter() - started
        started = time.perf_counter()
        warm = run_sweep(config)
        warm_s = time.perf_counter() - started
        # the resilience overhead pair: two more cold-cache runs off the
        # now-warm in-process context (so neither pays the encode), one
        # plain and one with every resilience knob armed — per-cell
        # deadlines and the retry budget, nothing failing
        started = time.perf_counter()
        plain = run_sweep(SweepConfig(frames=args.frames, jobs=args.jobs,
                                      root=Path(tmp) / "plain"))
        plain_s = time.perf_counter() - started
        started = time.perf_counter()
        armed = run_sweep(SweepConfig(frames=args.frames, jobs=args.jobs,
                                      root=Path(tmp) / "armed",
                                      cell_timeout_s=600.0,
                                      max_retries=2))
        armed_s = time.perf_counter() - started
        # warm-incremental: touch ONE module outside every cell's import
        # closure (the decoder) in a copy of the tree, then re-sweep the
        # warm root with --incremental semantics — nothing may
        # re-execute and the wall must stay a small fraction of cold
        code_copy = Path(tmp) / "touched" / "repro"
        shutil.copytree(Path(repro.__file__).parent, code_copy,
                        ignore=shutil.ignore_patterns("__pycache__"))
        with open(code_copy / "codec" / "decoder.py", "a",
                  encoding="utf-8") as handle:
            handle.write("\n# bench: single-module touch\n")
        reset_scan_cache()
        started = time.perf_counter()
        incremental = run_sweep(SweepConfig(
            frames=args.frames, jobs=args.jobs, root=Path(tmp),
            incremental=True, code_root=code_copy))
        incremental_s = time.perf_counter() - started
        reset_scan_cache()
        # the supervision pair: spawned two-worker fleets with a tight
        # heartbeat budget, fresh caches so every cell really executes —
        # one clean, one with a worker frozen mid-lease by an injected
        # hang that the lease watchdog must revoke and requeue
        def _dist_config(label, fault_spec=None, journal=False):
            return SweepConfig(
                frames=args.frames, jobs=args.jobs,
                root=Path(tmp) / label, distributed="127.0.0.1:0",
                spawn_workers=2, worker_wait_s=60.0,
                heartbeat_s=DIST_HEARTBEAT_S,
                lease_timeout_s=DIST_LEASE_TIMEOUT_S,
                fault_spec=fault_spec,
                journal_dir=Path(tmp) / label / "journal"
                if journal else None)

        started = time.perf_counter()
        dist_clean = run_sweep(_dist_config("dist-clean"))
        dist_clean_s = time.perf_counter() - started
        started = time.perf_counter()
        dist_hang = run_sweep(_dist_config("dist-hang", DIST_HANG_SPEC))
        dist_hang_s = time.perf_counter() - started
        faults.clear()   # the hang spec was installed process-wide
        # the durability-overhead run: same clean fleet, every control-
        # plane commit paying its write-ahead fsync barrier
        started = time.perf_counter()
        dist_journal = run_sweep(_dist_config("dist-journal",
                                              journal=True))
        dist_journal_s = time.perf_counter() - started

        failures = []
        if cold.failures or warm.failures or plain.failures \
                or armed.failures:
            failures.append(
                f"failed cells: cold={[c.name for c in cold.failures]} "
                f"warm={[c.name for c in warm.failures]} "
                f"plain={[c.name for c in plain.failures]} "
                f"armed={[c.name for c in armed.failures]}")
        if cold.report != warm.report:
            failures.append("cold and warm reports are not byte-identical")
        if cold.report != armed.report or cold.report != plain.report:
            failures.append(
                "resilience-pair reports are not byte-identical to cold")
        if cold.cache_hits != 0:
            failures.append(f"cold run hit the cache {cold.cache_hits}x "
                            f"(expected a cold start)")
        hits = read_events(warm.run_log, "cache_hit")
        hit_rate = len(hits) / len(warm.cells)
        if hit_rate < args.min_hit_rate:
            failures.append(f"warm hit rate {hit_rate:.0%} below the "
                            f"{args.min_hit_rate:.0%} gate "
                            f"(hits: {sorted(e['cell'] for e in hits)})")
        overhead_budget_s = plain_s * (1.0 + args.max_overhead) \
            + args.overhead_slack
        if armed_s > overhead_budget_s:
            failures.append(
                f"armed resilience run took {armed_s:.2f}s, over the "
                f"{overhead_budget_s:.2f}s budget (plain {plain_s:.2f}s "
                f"x {1 + args.max_overhead:.2f} + {args.overhead_slack}s "
                f"slack)")
        reexecuted = read_events(incremental.run_log, "cell_start")
        if reexecuted:
            failures.append(
                f"warm-incremental re-executed "
                f"{sorted(e['cell'] for e in reexecuted)} after a "
                f"decoder-only touch (expected nothing)")
        if incremental.report != cold.report:
            failures.append(
                "warm-incremental report is not byte-identical to cold")
        incremental_budget_s = cold_s * args.max_incremental_fraction \
            + args.incremental_slack
        if incremental_s > incremental_budget_s:
            failures.append(
                f"warm-incremental took {incremental_s:.2f}s, over the "
                f"{incremental_budget_s:.2f}s budget (cold {cold_s:.2f}s "
                f"x {args.max_incremental_fraction} + "
                f"{args.incremental_slack}s slack)")
        if dist_clean.failures or dist_hang.failures \
                or dist_journal.failures:
            failures.append(
                f"distributed failures: "
                f"clean={[c.name for c in dist_clean.failures]} "
                f"hang={[c.name for c in dist_hang.failures]} "
                f"journal={[c.name for c in dist_journal.failures]}")
        if dist_clean.report != cold.report \
                or dist_hang.report != cold.report \
                or dist_journal.report != cold.report:
            failures.append(
                "distributed reports are not byte-identical to cold")
        expiries = read_events(dist_hang.run_log, "lease_expired")
        if not expiries:
            failures.append(
                f"the injected hang ({DIST_HANG_SPEC}) never expired a "
                f"lease — supervision did not engage")
        detection_s = max((e["since_beat_s"] for e in expiries),
                          default=0.0)
        detection_budget_s = args.detection_factor * DIST_LEASE_TIMEOUT_S
        if detection_s > detection_budget_s:
            failures.append(
                f"hung lease detected after {detection_s:.2f}s, over the "
                f"{detection_budget_s:.2f}s budget "
                f"({args.detection_factor}x the {DIST_LEASE_TIMEOUT_S}s "
                f"lease budget)")
        dist_budget_s = dist_clean_s * (1.0 + args.max_dist_overhead) \
            + args.dist_slack
        if dist_hang_s > dist_budget_s:
            failures.append(
                f"faulted distributed run took {dist_hang_s:.2f}s, over "
                f"the {dist_budget_s:.2f}s budget (clean "
                f"{dist_clean_s:.2f}s x {1 + args.max_dist_overhead:.2f} "
                f"+ {args.dist_slack}s slack)")
        journal_budget_s = dist_clean_s \
            * (1.0 + args.max_journal_overhead) + args.dist_slack
        if dist_journal_s > journal_budget_s:
            failures.append(
                f"journaled distributed run took {dist_journal_s:.2f}s, "
                f"over the {journal_budget_s:.2f}s budget (clean "
                f"{dist_clean_s:.2f}s x "
                f"{1 + args.max_journal_overhead:.2f} + "
                f"{args.dist_slack}s slack) — write-ahead journaling is "
                f"taxing the happy path")

        print(f"sweep x{len(cold.cells)} cells, {args.frames} frames, "
              f"jobs={args.jobs}")
        print(f"  cold:  {cold_s:6.2f}s  "
              f"({cold.sweep_report['totals']['executed']} executed)")
        print(f"  warm:  {warm_s:6.2f}s  ({len(hits)} cache hits, "
              f"hit rate {hit_rate:.0%}, {cold_s / max(warm_s, 1e-9):.0f}x "
              f"faster)")
        print(f"  plain: {plain_s:6.2f}s  (cold cache, warm context)")
        print(f"  armed: {armed_s:6.2f}s  (timeouts+retries armed, "
              f"{100 * (armed_s / max(plain_s, 1e-9) - 1):+.1f}% vs plain)")
        print(f"  incr:  {incremental_s:6.2f}s  (decoder-only touch, "
              f"{len(reexecuted)} cells re-executed, "
              f"{100 * incremental_s / max(cold_s, 1e-9):.0f}% of cold)")
        print(f"  dist:  {dist_clean_s:6.2f}s  (2 spawned workers, clean)")
        print(f"  hang:  {dist_hang_s:6.2f}s  (injected hang, detected "
              f"in {detection_s:.2f}s, "
              f"{100 * (dist_hang_s / max(dist_clean_s, 1e-9) - 1):+.1f}% "
              f"vs clean)")
        print(f"  jrnl:  {dist_journal_s:6.2f}s  (write-ahead journal "
              f"armed, "
              f"{100 * (dist_journal_s / max(dist_clean_s, 1e-9) - 1):+.1f}%"
              f" vs clean)")
        artifact = record_trajectory(
            "bench_sweep",
            wall_s={"cold": cold_s, "warm": warm_s, "plain": plain_s,
                    "armed": armed_s, "warm_incremental": incremental_s,
                    "dist_clean": dist_clean_s, "dist_hang": dist_hang_s,
                    "dist_journal": dist_journal_s},
            gates={
                "min_hit_rate": args.min_hit_rate,
                "warm_hit_rate": hit_rate,
                "max_armed_overhead": args.max_overhead,
                "armed_overhead": armed_s / max(plain_s, 1e-9) - 1.0,
                "max_incremental_fraction": args.max_incremental_fraction,
                "incremental_fraction":
                    incremental_s / max(cold_s, 1e-9),
                "incremental_reexecuted": len(reexecuted),
                "max_detection_s": detection_budget_s,
                "hang_detection_s": detection_s,
                "max_dist_overhead": args.max_dist_overhead,
                "dist_overhead":
                    dist_hang_s / max(dist_clean_s, 1e-9) - 1.0,
                "max_journal_overhead": args.max_journal_overhead,
                "journal_overhead":
                    dist_journal_s / max(dist_clean_s, 1e-9) - 1.0,
                "passed": not failures,
            },
            extra={"frames": args.frames, "jobs": args.jobs,
                   "cells": len(cold.cells),
                   "lease_timeout_s": DIST_LEASE_TIMEOUT_S,
                   "heartbeat_s": DIST_HEARTBEAT_S})
        print(f"  trajectory: {artifact}")
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print("OK: byte-identical reports, cache, resilience-overhead, "
              "warm-incremental, supervision and journal-overhead gates "
              "passed")
        return 0


if __name__ == "__main__":
    sys.exit(main())

"""End-to-end pipeline benchmarks: encoder throughput, trace replay
throughput, and scenario-level speedup extraction on a fresh (uncached)
exploration.  These measure the *simulator's* performance, complementing
the table benchmarks that regenerate the paper's numbers."""

from repro.codec import EncoderConfig, Mpeg4Encoder, SyntheticSequenceConfig, \
    synthetic_sequence
from repro.codec.motion import ThreeStepSearch
from repro.core import TraceReplayer, instruction_scenario, loop_scenario
from repro.rfu.loop_model import Bandwidth


def bench_encoder_three_frames(benchmark):
    frames = synthetic_sequence(SyntheticSequenceConfig(frames=3))

    def encode():
        return Mpeg4Encoder(EncoderConfig(strategy=ThreeStepSearch(2))) \
            .encode(frames)

    report = benchmark(encode)
    assert len(report.trace) > 0


def _small_trace():
    frames = synthetic_sequence(SyntheticSequenceConfig(frames=3))
    report = Mpeg4Encoder(EncoderConfig(strategy=ThreeStepSearch(2))) \
        .encode(frames)
    return report.trace


def bench_baseline_replay(benchmark):
    trace = _small_trace()

    def replay():
        return TraceReplayer(trace).replay(instruction_scenario("orig"))

    result = benchmark(replay)
    assert result.total_cycles > 0


def bench_loop_replay(benchmark):
    trace = _small_trace()
    scenario = loop_scenario(Bandwidth.B1X32)

    def replay():
        return TraceReplayer(trace).replay(scenario)

    result = benchmark(replay)
    assert result.total_cycles > 0


def bench_two_line_buffer_replay(benchmark):
    trace = _small_trace()
    scenario = loop_scenario(Bandwidth.B1X32, line_buffer_b=True)

    def replay():
        return TraceReplayer(trace).replay(scenario)

    result = benchmark(replay)
    assert result.lb_reuse > 0

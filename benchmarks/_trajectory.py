"""Cross-PR perf trajectory: append benchmark rows to ``BENCH_sweep.json``.

Every gate-bearing benchmark (``bench_sweep.py``, ``bench_serving.py``)
records one row per run into a repo-root artifact so perf history is
trackable across PRs (CI uploads the file).  A row carries the bench
name, the measured wall times, the gate values it was judged against,
and the git sha it measured — enough to plot a trajectory without
re-running anything.

The file is a JSON object ``{"schema": 1, "rows": [...]}``; rows append
in run order and the write is atomic (tmp + rename), so a crashed bench
never leaves a half-written artifact behind.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import time
from typing import Dict, Optional

#: repo root = parent of benchmarks/
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

ARTIFACT = "BENCH_sweep.json"

SCHEMA = 1


def _git_sha(root: pathlib.Path) -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=root, capture_output=True,
            text=True, timeout=10, check=False)
        sha = out.stdout.strip()
        return sha if out.returncode == 0 and sha else "unknown"
    except OSError:
        return "unknown"


def record_trajectory(bench: str, *, wall_s: Dict[str, float],
                      gates: Dict[str, object],
                      extra: Optional[Dict[str, object]] = None,
                      path: Optional[pathlib.Path] = None) -> pathlib.Path:
    """Append one benchmark row; returns the artifact path.

    ``wall_s`` maps phase name -> seconds; ``gates`` maps gate name ->
    the value the gate saw (thresholds and measurements alike, so a row
    is self-describing); ``extra`` rides along verbatim.
    """
    target = pathlib.Path(path) if path is not None \
        else REPO_ROOT / ARTIFACT
    doc = {"schema": SCHEMA, "rows": []}
    if target.exists():
        try:
            loaded = json.loads(target.read_text(encoding="utf-8"))
            if isinstance(loaded.get("rows"), list):
                doc["rows"] = loaded["rows"]
        except (json.JSONDecodeError, OSError):
            pass   # a corrupt artifact restarts the trajectory
    row = {
        "bench": bench,
        "git_sha": _git_sha(target.parent),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "wall_s": {name: round(float(value), 4)
                   for name, value in wall_s.items()},
        "gates": gates,
    }
    if extra:
        row["extra"] = extra
    doc["rows"].append(row)
    tmp = target.with_name(target.name + f".tmp{os.getpid()}")
    tmp.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    tmp.replace(target)
    return target

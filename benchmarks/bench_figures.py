"""Regenerate the paper's figures (1-4) from the live models."""

import pytest

from repro.experiments import run_figure1, run_figure2, run_figure3, run_figure4
from repro.rfu.loop_model import InterpMode

FIGURES = {
    "figure1": run_figure1,
    "figure3": run_figure3,
    "figure4": run_figure4,
}


@pytest.mark.parametrize("name", list(FIGURES))
def bench_figure(benchmark, save_artifact, name):
    figure = benchmark(FIGURES[name])
    save_artifact(name, figure.render())
    assert figure.lines


def bench_figure2_alignment_sweep(benchmark, save_artifact):
    """Figure 2 across every alignment and interpolation mode."""
    def sweep():
        sections = []
        for alignment in range(4):
            for mode in InterpMode:
                from repro.experiments import run_figure2
                sections.append(run_figure2(alignment, mode).render())
        return "\n\n".join(sections)

    rendered = benchmark(sweep)
    save_artifact("figure2", rendered)
    assert "alignment 3, HV" in rendered

"""Ablation benchmarks: the design-choice sweeps DESIGN.md calls out."""

import pytest

from repro.experiments.ablations import (
    run_bus_ablation,
    run_context_schedule_experiment,
    run_lbb_capacity_ablation,
    run_reconfiguration_ablation,
    run_search_ablation,
)
from repro.experiments.extraction_experiment import run_extraction_experiment
from repro.experiments.futurework import run_futurework

CONTEXT_ABLATIONS = {
    "ablation_reconfig": run_reconfiguration_ablation,
    "ablation_lbb": run_lbb_capacity_ablation,
    "ablation_bus": run_bus_ablation,
    "context_sched": run_context_schedule_experiment,
    "futurework": run_futurework,
    "extraction": run_extraction_experiment,
}


@pytest.mark.parametrize("name", list(CONTEXT_ABLATIONS))
def bench_ablation(benchmark, context, save_artifact, name):
    table = benchmark.pedantic(CONTEXT_ABLATIONS[name], args=(context,),
                               rounds=1, iterations=1)
    save_artifact(name, table.render())
    assert table.rows


def bench_ablation_search(benchmark, save_artifact):
    table = benchmark.pedantic(run_search_ablation, kwargs={"frames": 3},
                               rounds=1, iterations=1)
    save_artifact("ablation_search", table.render())
    assert len(table.rows) == 3

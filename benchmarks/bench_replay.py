"""Trace-replay throughput benchmark: columnar engine vs legacy walk.

Standalone usage (the acceptance gate of the columnar-replay work)::

    PYTHONPATH=src python benchmarks/bench_replay.py [--frames 3]
                                                     [--min-speedup 5.0]
                                                     [--json breakdown.json]

The script encodes the workload once, then times the full scenario
catalogue (Tables 1-7: four instruction-level plus eight loop-level
scenarios) through

1. ``legacy``   — a fresh :class:`TraceReplayer` walking every invocation
   through the object-model memory hierarchy;
2. ``columnar`` — a fresh :class:`TraceReplayer` on the columnar engine,
   *including* its one-off trace compilation and classification passes.

Before any timing, every scenario's :class:`MeTimingResult` from the two
engines is compared field for field — a single differing cycle fails the
run.  Kernel static timings are deterministic and shared process-wide, so
they are warmed once up front and neither side pays compilation inside the
timed region (both engines use the identical measured numbers).

``--json`` additionally writes the columnar engine's per-phase breakdown
(compile/static/stall/loop wall time, calls, cycles) plus both wall times
— the artifact CI uploads.

The ``bench_*`` functions at the bottom expose both engines to
pytest-benchmark (``python -m pytest benchmarks/bench_replay.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Dict, Tuple

from repro.codec.tracer import MeTrace
from repro.core.exploration import Exploration, ExplorationConfig
from repro.core.scenarios import all_scenarios
from repro.core.timing import MeTimingResult, TraceReplayer

DEFAULT_FRAMES = 3
DEFAULT_MIN_SPEEDUP = 5.0


def workload_trace(frames: int, seed: int = 2002) -> MeTrace:
    """The GetSad trace of one deterministic synthetic encode."""
    exploration = Exploration(ExplorationConfig(frames=frames, seed=seed))
    return exploration.encoder_report.trace


def replay_catalogue(trace: MeTrace, engine: str) \
        -> Tuple[Dict[str, MeTimingResult], float, TraceReplayer]:
    """Replay every catalogue scenario on a fresh replayer of ``engine``;
    returns (results by name, wall seconds, the replayer)."""
    replayer = TraceReplayer(trace, engine=engine)
    start = time.perf_counter()
    results = {scenario.name: replayer.replay(scenario)
               for scenario in all_scenarios()}
    return results, time.perf_counter() - start, replayer


def warm_kernel_timings(trace: MeTrace) -> None:
    """Measure every kernel shape once so the process-wide shared timing
    cache is hot: the timed replays then exercise replay code only, and
    both engines read identical static-cycle numbers."""
    throwaway = TraceReplayer(trace, engine="legacy")
    for scenario in all_scenarios():
        if scenario.kind == "instruction":
            library = throwaway._library(scenario.variant)
            library.all_shapes()


def run(frames: int = DEFAULT_FRAMES,
        min_speedup: float = DEFAULT_MIN_SPEEDUP, reps: int = 3,
        verbose: bool = True, json_path: str = None) -> float:
    trace = workload_trace(frames)
    warm_kernel_timings(trace)

    # -- correctness gate: both engines must produce identical results for
    # every scenario of the catalogue before any throughput is reported
    legacy_results, _, _ = replay_catalogue(trace, "legacy")
    columnar_results, _, _ = replay_catalogue(trace, "columnar")
    for name, expected in legacy_results.items():
        if columnar_results[name] != expected:
            raise AssertionError(
                f"columnar replay diverges on {name}: "
                f"{columnar_results[name]} != {expected}")

    legacy_s = None
    columnar_s = None
    breakdown = None
    for _ in range(reps):
        _, elapsed, _ = replay_catalogue(trace, "legacy")
        legacy_s = elapsed if legacy_s is None else min(legacy_s, elapsed)
        _, elapsed, replayer = replay_catalogue(trace, "columnar")
        if columnar_s is None or elapsed < columnar_s:
            columnar_s = elapsed
            breakdown = replayer.phase_breakdown()
    speedup = legacy_s / columnar_s

    scenarios = len(legacy_results)
    if verbose:
        print(f"workload: {frames} QCIF frames, {len(trace):,} GetSad "
              f"invocations, {scenarios} catalogue scenarios "
              f"(results verified identical)")
        print(f"  legacy   : {legacy_s:.3f}s "
              f"({scenarios / legacy_s:.1f} scenarios/s)")
        print(f"  columnar : {columnar_s:.3f}s "
              f"({scenarios / columnar_s:.1f} scenarios/s)  "
              f"{speedup:.2f}x  <- headline")
        phases = ", ".join(
            f"{name} {bucket['wall_s']:.3f}s/{bucket['calls']}"
            for name, bucket in breakdown.items())
        print(f"  columnar phases: {phases}")
    if json_path:
        payload = {
            "frames": frames,
            "invocations": len(trace),
            "scenarios": scenarios,
            "legacy_wall_s": round(legacy_s, 4),
            "columnar_wall_s": round(columnar_s, 4),
            "speedup": round(speedup, 3),
            "phases": breakdown,
        }
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        if verbose:
            print(f"breakdown written to {json_path}")
    return speedup


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--frames", type=int, default=DEFAULT_FRAMES)
    parser.add_argument("--min-speedup", type=float,
                        default=DEFAULT_MIN_SPEEDUP,
                        help="fail unless the columnar engine beats the "
                             "legacy walk by this factor (0 disables)")
    parser.add_argument("--reps", type=int, default=3,
                        help="timing repetitions (best-of)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the per-phase breakdown JSON here")
    args = parser.parse_args(argv)
    if args.frames < 2:
        parser.error("--frames must be >= 2 (frame 0 is the I-frame "
                     "reference; motion estimation starts at frame 1)")
    speedup = run(args.frames, args.min_speedup, args.reps,
                  json_path=args.json)
    if args.min_speedup and speedup < args.min_speedup:
        print(f"FAIL: {speedup:.2f}x < required {args.min_speedup:.2f}x",
              file=sys.stderr)
        return 1
    print(f"OK: {speedup:.2f}x")
    return 0


# -- pytest-benchmark entry points (small workload) --------------------------

def _fixture_trace() -> MeTrace:
    trace = workload_trace(DEFAULT_FRAMES)
    warm_kernel_timings(trace)
    return trace


def bench_legacy_replay(benchmark):
    trace = _fixture_trace()
    benchmark(replay_catalogue, trace, "legacy")


def bench_columnar_replay(benchmark):
    trace = _fixture_trace()
    benchmark(replay_catalogue, trace, "columnar")


if __name__ == "__main__":
    sys.exit(main())

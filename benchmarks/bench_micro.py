"""Microbenchmarks of the architectural substrate itself: scheduler,
cycle-level core, cache model and GetSad kernel compilation.

Run directly (``python benchmarks/bench_micro.py``) this file is the
schedule-quality gate: it prints the per-kernel static schedule lengths of
every scheduling tier (paper / paper+fill / sweep / modulo) over the
GetSad, MC and DCT inner loops and enforces the quality gates:

* sweep and same-cycle fill are never worse than the paper schedule;
* the seeded sweep is deterministic (two runs, identical lengths) and its
  on-disk cache serves warm hits on the second run;
* modulo scheduling shortens the GetSad a1/align0/HV inner loop by >= 20%
  (the issue's headline gap-closing target);
* sweep shortens its best GetSad loop (a3/align0/V) by >= 5%.
"""

import numpy as np

from repro.isa import Operation, vreg
from repro.kernels import KernelLibrary, KernelShape
from repro.machine import Core, compile_kernel
from repro.memory import Cache, MemorySystem
from repro.program import BasicBlock, schedule_block
from repro.program.builder import KernelBuilder
from repro.rfu.loop_model import InterpMode


def bench_list_scheduler_200_ops(benchmark):
    def build_and_schedule():
        produced = [vreg("seed")]
        ops = [Operation("movi", dest=produced[0], imm=0)]
        for i in range(200):
            dest = vreg()
            ops.append(Operation("addi", dest=dest,
                                 srcs=(produced[i % len(produced)],), imm=1))
            produced.append(dest)
        return schedule_block(BasicBlock("b", ops))

    scheduled = benchmark(build_and_schedule)
    assert scheduled.op_count() == 201


def bench_core_loop_execution(benchmark):
    kb = KernelBuilder("spinsum")
    base = kb.param("base")
    count = kb.persistent_reg("count")
    acc = kb.persistent_reg("acc")
    with kb.block("init"):
        kb.emit("movi", dest=count, imm=256)
        kb.emit("movi", dest=acc, imm=0)
    with kb.counted_loop("loop", count):
        value = kb.load_word(base)
        kb.emit("add", acc, value, dest=acc)
        kb.emit("addi", base, dest=base, imm=4)
    kb.set_result(acc)
    loaded = compile_kernel(kb.finish())
    memory = MemorySystem()
    core = Core(memory)
    core.run(loaded, [0x10000])  # warm

    result = benchmark(core.run, loaded, [0x10000])
    assert result.result == 0


def bench_cache_model_raster_walk(benchmark):
    cache = Cache(32 * 1024, 32, 4)

    def walk():
        hits = 0
        for frame in range(2):
            for addr in range(0, 176 * 144, 16):
                if cache.access(addr):
                    hits += 1
                else:
                    cache.fill(addr)
        return hits

    hits = benchmark(walk)
    assert hits > 0


def bench_getsad_kernel_compile_and_verify(benchmark):
    def compile_all_diag_shapes():
        library = KernelLibrary("a2")
        return [library.timing(KernelShape(alignment, InterpMode.HV)).cycles
                for alignment in range(4)]

    cycles = benchmark(compile_all_diag_shapes)
    assert all(c > 0 for c in cycles)


def bench_golden_sad_numpy(benchmark):
    rng = np.random.default_rng(1)
    plane = rng.integers(0, 256, (144, 176), dtype=np.uint8)
    from repro.codec.sad import getsad

    def sad_sweep():
        total = 0
        for dx in range(-4, 5):
            total += getsad(plane, plane, 64, 64, 64 + dx, 64, 1, 1)
        return total

    total = benchmark(sad_sweep)
    assert total > 0


# ---------------------------------------------------------------------------
# schedule-quality gate (run this file directly; CI uploads the table)
# ---------------------------------------------------------------------------

#: the issue's headline gate: modulo scheduling must shorten this GetSad
#: inner loop by at least this fraction vs the paper-mode schedule
MODULO_GATE_KERNEL = ("a1", 0, InterpMode.HV)
MODULO_GATE_MIN_GAIN = 0.20
#: the sweep tier's own gate kernel and threshold
SWEEP_GATE_KERNEL = ("a3", 0, InterpMode.V)
SWEEP_GATE_MIN_GAIN = 0.05


def _getsad_latency_of():
    from repro.rfu import RfuUnit, standard_registry
    rfu = RfuUnit(standard_registry(), beta=1.0)

    def latency_of(op):
        if op.spec.latency is not None:
            return op.spec.latency
        if op.opcode in ("rfuinit", "rfusend", "rfupft"):
            return 1
        return rfu.latency(op.imm)

    return latency_of


def _loop_blocks(program):
    """The counted-loop bodies of a kernel (labels containing 'loop')."""
    return [block for block in program.blocks if "loop" in block.label]


def _measure_program(name, program, latency_of, config, sweep_seeds):
    """Per-loop schedule lengths of every tier for one kernel program."""
    from repro.program import schedule_block, schedule_program

    rows = []
    modes = {}
    for mode in ("paper", "sweep", "modulo"):
        modes[mode] = schedule_program(
            program, latency_of, config.capacity, config.issue_width,
            pressure_limit=config.pressure_limit, mode=mode,
            sweep_seeds=sweep_seeds)
    pipelined = {loop.label: loop
                 for loop in getattr(modes["modulo"], "pipelined", [])}
    for block in _loop_blocks(program):
        lengths = {}
        for mode in ("paper", "sweep"):
            scheduled = next(b for b in modes[mode].blocks
                             if b.label == block.label)
            lengths[mode] = scheduled.length
        filled = schedule_block(
            block, latency_of, config.capacity, config.issue_width,
            pressure_limit=config.pressure_limit, fill_same_cycle=True)
        lengths["fill"] = filled.length
        loop = pipelined.get(block.label)
        lengths["modulo_ii"] = loop.ii if loop else None
        rows.append((f"{name}:{block.label}", lengths))
    return rows


def _collect_rows(sweep_seeds):
    from repro.kernels.getsad import (
        KernelShape, build_getsad_kernel, kernel_rfu_issue_width)
    from repro.kernels.mc import build_mc_kernel
    from repro.kernels.dct_kernel import build_dct_kernel
    from repro.machine import MachineConfig

    rows = []
    getsad_latency = _getsad_latency_of()
    for variant in ("orig", "a1", "a2", "a3"):
        config = MachineConfig().with_rfu_issue(
            kernel_rfu_issue_width(variant))
        for alignment in (0, 1):
            for mode in InterpMode:
                shape = KernelShape(alignment, mode)
                program = build_getsad_kernel(variant, shape)
                rows += _measure_program(
                    f"getsad/{variant}/{shape.label}", program,
                    getsad_latency, config, sweep_seeds)
    config = MachineConfig()
    for alignment in (0, 1):
        for mode in InterpMode:
            shape = KernelShape(alignment, mode)
            rows += _measure_program(
                f"mc/{shape.label}", build_mc_kernel(shape), None,
                config, sweep_seeds)
    rows += _measure_program("dct", build_dct_kernel(), None, config,
                             sweep_seeds)
    return rows


def _format_table(rows):
    lines = [f"{'kernel loop':<28s} {'paper':>6s} {'fill':>6s} "
             f"{'sweep':>6s} {'mod-II':>6s} {'best-gain':>9s}"]
    for name, lengths in rows:
        paper = lengths["paper"]
        best = min(value for value in (lengths["fill"], lengths["sweep"],
                                       lengths["modulo_ii"])
                   if value is not None)
        gain = 100.0 * (paper - best) / paper
        modulo = f"{lengths['modulo_ii']:>6d}" \
            if lengths["modulo_ii"] is not None else f"{'--':>6s}"
        lines.append(f"{name:<28s} {paper:>6d} {lengths['fill']:>6d} "
                     f"{lengths['sweep']:>6d} {modulo} {gain:>8.1f}%")
    return "\n".join(lines)


def _check_sweep_determinism(sweep_seeds, errors):
    """Two sweeps of the gate kernel: identical lengths + warm disk hits."""
    import tempfile

    from repro.kernels.getsad import KernelShape, build_getsad_kernel, \
        kernel_rfu_issue_width
    from repro.machine import MachineConfig
    from repro.program import sweep_schedule_block, sweep_stats
    from repro.program.priorities import clear_sweep_memo, reset_sweep_stats

    variant, alignment, mode = MODULO_GATE_KERNEL
    program = build_getsad_kernel(variant, KernelShape(alignment, mode))
    config = MachineConfig().with_rfu_issue(kernel_rfu_issue_width(variant))
    latency_of = _getsad_latency_of()
    with tempfile.TemporaryDirectory() as cache_dir:
        def one_run():
            clear_sweep_memo()
            reset_sweep_stats()
            return [sweep_schedule_block(
                block, latency_of, config.capacity, config.issue_width,
                pressure_limit=config.pressure_limit, seeds=sweep_seeds,
                cache_dir=cache_dir).length for block in program.blocks]

        cold = one_run()
        cold_stats = sweep_stats()
        warm = one_run()
        warm_stats = sweep_stats()
    if cold != warm:
        errors.append(f"sweep is not deterministic: {cold} != {warm}")
    if cold_stats["disk_hits"]:
        errors.append(f"cold sweep run claimed disk hits: {cold_stats}")
    if warm_stats["disk_hits"] < len(program.blocks):
        errors.append(f"warm sweep run missed the on-disk cache: "
                      f"{warm_stats} over {len(program.blocks)} blocks")
    return cold_stats, warm_stats


def _row(rows, prefix):
    for name, lengths in rows:
        if name.startswith(prefix):
            return lengths
    raise KeyError(prefix)


def main(argv=None):
    import argparse

    from repro.kernels.getsad import KernelShape

    parser = argparse.ArgumentParser(
        description="per-kernel schedule-length table + quality gates")
    parser.add_argument("--sweep-seeds", type=int, default=16)
    parser.add_argument("--output", "-o", default=None,
                        help="also write the table to this file (the CI "
                             "artifact)")
    parser.add_argument("--no-check", action="store_true",
                        help="print the table without enforcing the gates")
    args = parser.parse_args(argv)

    rows = _collect_rows(args.sweep_seeds)
    table = _format_table(rows)
    print(table)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(table + "\n")
        print(f"table written to {args.output}")
    if args.no_check:
        return 0

    errors = []
    for name, lengths in rows:
        if lengths["sweep"] > lengths["paper"]:
            errors.append(f"{name}: sweep ({lengths['sweep']}) worse than "
                          f"paper ({lengths['paper']})")
        if lengths["fill"] > lengths["paper"]:
            errors.append(f"{name}: same-cycle fill ({lengths['fill']}) "
                          f"worse than paper ({lengths['paper']})")

    variant, alignment, mode = MODULO_GATE_KERNEL
    gate = _row(rows, f"getsad/{variant}/{KernelShape(alignment, mode).label}")
    if gate["modulo_ii"] is None:
        errors.append("modulo gate kernel did not pipeline")
    else:
        gain = (gate["paper"] - gate["modulo_ii"]) / gate["paper"]
        status = "OK" if gain >= MODULO_GATE_MIN_GAIN else "FAIL"
        print(f"modulo gate  getsad/{variant} align{alignment} {mode.name}: "
              f"loop {gate['paper']} -> II {gate['modulo_ii']} "
              f"({100 * gain:.1f}% >= {100 * MODULO_GATE_MIN_GAIN:.0f}%) "
              f"{status}")
        if gain < MODULO_GATE_MIN_GAIN:
            errors.append(f"modulo gate: {100 * gain:.1f}% < "
                          f"{100 * MODULO_GATE_MIN_GAIN:.0f}%")

    variant, alignment, mode = SWEEP_GATE_KERNEL
    gate = _row(rows, f"getsad/{variant}/{KernelShape(alignment, mode).label}")
    gain = (gate["paper"] - gate["sweep"]) / gate["paper"]
    status = "OK" if gain >= SWEEP_GATE_MIN_GAIN else "FAIL"
    print(f"sweep gate   getsad/{variant} align{alignment} {mode.name}: "
          f"loop {gate['paper']} -> {gate['sweep']} "
          f"({100 * gain:.1f}% >= {100 * SWEEP_GATE_MIN_GAIN:.0f}%) {status}")
    if gain < SWEEP_GATE_MIN_GAIN:
        errors.append(f"sweep gate: {100 * gain:.1f}% < "
                      f"{100 * SWEEP_GATE_MIN_GAIN:.0f}%")

    cold, warm = _check_sweep_determinism(args.sweep_seeds, errors)
    print(f"sweep cache  cold {cold}, warm {warm}")

    if errors:
        for error in errors:
            print(f"GATE FAILED: {error}")
        return 1
    print("all schedule-quality gates passed")
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())

"""Microbenchmarks of the architectural substrate itself: scheduler,
cycle-level core, cache model and GetSad kernel compilation."""

import numpy as np

from repro.isa import Operation, vreg
from repro.kernels import KernelLibrary, KernelShape
from repro.machine import Core, compile_kernel
from repro.memory import Cache, MemorySystem
from repro.program import BasicBlock, schedule_block
from repro.program.builder import KernelBuilder
from repro.rfu.loop_model import InterpMode


def bench_list_scheduler_200_ops(benchmark):
    def build_and_schedule():
        produced = [vreg("seed")]
        ops = [Operation("movi", dest=produced[0], imm=0)]
        for i in range(200):
            dest = vreg()
            ops.append(Operation("addi", dest=dest,
                                 srcs=(produced[i % len(produced)],), imm=1))
            produced.append(dest)
        return schedule_block(BasicBlock("b", ops))

    scheduled = benchmark(build_and_schedule)
    assert scheduled.op_count() == 201


def bench_core_loop_execution(benchmark):
    kb = KernelBuilder("spinsum")
    base = kb.param("base")
    count = kb.persistent_reg("count")
    acc = kb.persistent_reg("acc")
    with kb.block("init"):
        kb.emit("movi", dest=count, imm=256)
        kb.emit("movi", dest=acc, imm=0)
    with kb.counted_loop("loop", count):
        value = kb.load_word(base)
        kb.emit("add", acc, value, dest=acc)
        kb.emit("addi", base, dest=base, imm=4)
    kb.set_result(acc)
    loaded = compile_kernel(kb.finish())
    memory = MemorySystem()
    core = Core(memory)
    core.run(loaded, [0x10000])  # warm

    result = benchmark(core.run, loaded, [0x10000])
    assert result.result == 0


def bench_cache_model_raster_walk(benchmark):
    cache = Cache(32 * 1024, 32, 4)

    def walk():
        hits = 0
        for frame in range(2):
            for addr in range(0, 176 * 144, 16):
                if cache.access(addr):
                    hits += 1
                else:
                    cache.fill(addr)
        return hits

    hits = benchmark(walk)
    assert hits > 0


def bench_getsad_kernel_compile_and_verify(benchmark):
    def compile_all_diag_shapes():
        library = KernelLibrary("a2")
        return [library.timing(KernelShape(alignment, InterpMode.HV)).cycles
                for alignment in range(4)]

    cycles = benchmark(compile_all_diag_shapes)
    assert all(c > 0 for c in cycles)


def bench_golden_sad_numpy(benchmark):
    rng = np.random.default_rng(1)
    plane = rng.integers(0, 256, (144, 176), dtype=np.uint8)
    from repro.codec.sad import getsad

    def sad_sweep():
        total = 0
        for dx in range(-4, 5):
            total += getsad(plane, plane, 64, 64, 64 + dx, 64, 1, 1)
        return total

    total = benchmark(sad_sweep)
    assert total > 0
